// Differential tests for the out-of-core storage layer: a paged engine
// (adjacency + postings behind PagedStore/BufferPool) must return
// byte-identical answers and deterministic metrics to the in-RAM engine
// at every algorithm × bound mode × shard count × pool size — including
// pools pathologically smaller than the working set.

#include "storage/paged_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "search/answer.h"
#include "test_util.h"
#include "text/inverted_index.h"

namespace banks {
namespace {

// Paths are per-process: ctest runs many tests from this binary
// concurrently, and a shared fixture file would be overwritten by one
// process while another reads pages from it.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

/// Execution-independent metric comparison: page_hits/page_misses/
/// page_waits and timing fields are deliberately excluded (metrics.h).
void ExpectSameDeterministicMetrics(const SearchMetrics& a,
                                    const SearchMetrics& b) {
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.edges_relaxed, b.edges_relaxed);
  EXPECT_EQ(a.propagation_steps, b.propagation_steps);
  EXPECT_EQ(a.answers_generated, b.answers_generated);
  EXPECT_EQ(a.answers_output, b.answers_output);
  EXPECT_EQ(a.bsp_rounds, b.bsp_rounds);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

void ExpectSameResult(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_TRUE(SameAnswer(a.answers[i], b.answers[i])) << "answer " << i;
    EXPECT_DOUBLE_EQ(a.answers[i].score, b.answers[i].score) << "answer " << i;
  }
  ExpectSameDeterministicMetrics(a.metrics, b.metrics);
}

/// Shared fixture: one small DBLP data graph, its in-RAM engine, and the
/// same graph saved as paged files in both layouts. Built once.
struct PagedEnv {
  PagedEnv()
      : ram(Engine::FromDatabase(GenerateDblp(SmallConfig()))),
        clustered_path(TempPath("paged_clustered.banks")),
        node_order_path(TempPath("paged_node_order.banks")) {
    PagedStoreOptions save;
    save.page_size = 4u << 10;  // small pages: many pages even at this size
    save.layout = PageLayout::kClustered;
    ok = PagedStore::Save(ram.data(), ram.prestige(), clustered_path, save);
    save.layout = PageLayout::kNodeOrder;
    ok = ok &&
         PagedStore::Save(ram.data(), ram.prestige(), node_order_path, save);

    // Keyword sets drawn from the generated vocabulary: a few real terms
    // spread across the frequency range, plus a relation-name keyword.
    const auto terms = ram.index().SortedTerms();
    auto term = [&](size_t frac_num, size_t frac_den) {
      return terms[terms.size() * frac_num / frac_den].first;
    };
    queries = {
        {term(1, 10), term(1, 2)},
        {term(1, 4), term(3, 4)},
        {term(1, 3), term(2, 3), term(9, 10)},
        {"author", term(1, 2)},
    };
  }

  static DblpConfig SmallConfig() {
    DblpConfig cfg;
    cfg.num_authors = 150;
    cfg.num_papers = 300;
    cfg.num_conferences = 12;
    cfg.seed = 7;
    return cfg;
  }

  Engine ram;
  std::string clustered_path;
  std::string node_order_path;
  bool ok = false;
  std::vector<std::vector<std::string>> queries;
};

const PagedEnv& Env() {
  static PagedEnv* env = new PagedEnv();
  return *env;
}

// ---------------------------------------------------------------------
// Structural roundtrip
// ---------------------------------------------------------------------

TEST(PagedStore, RoundtripPreservesGraphStructure) {
  ASSERT_TRUE(Env().ok);
  std::optional<PagedData> pd = PagedStore::Open(Env().clustered_path);
  ASSERT_TRUE(pd.has_value());
  const Graph& a = Env().ram.graph();
  const Graph& b = pd->data.graph;
  ASSERT_TRUE(b.paged());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v)) << "node " << v;
    ASSERT_EQ(a.ForwardInDegree(v), b.ForwardInDegree(v)) << "node " << v;
    PagePin pin;
    std::span<const Edge> ae = a.OutEdges(v);
    std::span<const Edge> be = b.OutEdges(v, &pin);
    ASSERT_EQ(ae.size(), be.size()) << "node " << v;
    for (size_t i = 0; i < ae.size(); ++i) {
      ASSERT_EQ(ae[i].other, be[i].other) << "node " << v << " edge " << i;
      ASSERT_EQ(ae[i].weight, be[i].weight) << "node " << v << " edge " << i;
      ASSERT_EQ(ae[i].dir, be[i].dir) << "node " << v << " edge " << i;
    }
    PagePin in_pin;
    std::span<const Edge> ai = a.InEdges(v);
    std::span<const Edge> bi = b.InEdges(v, &in_pin);
    ASSERT_EQ(ai.size(), bi.size()) << "node " << v;
    for (size_t i = 0; i < ai.size(); ++i) {
      ASSERT_EQ(ai[i].other, bi[i].other) << "node " << v << " in " << i;
      ASSERT_EQ(ai[i].weight, bi[i].weight) << "node " << v << " in " << i;
    }
  }
  EXPECT_EQ(Env().ram.data().table_first_node, pd->data.table_first_node);
  EXPECT_EQ(Env().ram.data().node_labels, pd->data.node_labels);
  EXPECT_EQ(Env().ram.prestige(), pd->store->prestige());
}

TEST(PagedStore, RoundtripPreservesIndex) {
  ASSERT_TRUE(Env().ok);
  std::optional<PagedData> pd = PagedStore::Open(Env().node_order_path);
  ASSERT_TRUE(pd.has_value());
  const InvertedIndex& a = Env().ram.index();
  const InvertedIndex& b = pd->data.index;
  ASSERT_EQ(a.num_terms(), b.num_terms());
  for (const auto& [term, id] : a.SortedTerms()) {
    EXPECT_EQ(a.Match(term), b.Match(term)) << "term " << term;
  }
  // Relation-name keywords resolve through the relation table, which is
  // resident — but must still roundtrip.
  EXPECT_EQ(a.Match("author"), b.Match("author"));
  EXPECT_EQ(a.Match("paper"), b.Match("paper"));
}

TEST(PagedStore, OpenMissingFileFails) {
  EXPECT_FALSE(PagedStore::Open(TempPath("does_not_exist.banks")).has_value());
}

TEST(PagedStore, BothLayoutsHoldIdenticalLogicalData) {
  ASSERT_TRUE(Env().ok);
  std::optional<PagedData> c = PagedStore::Open(Env().clustered_path);
  std::optional<PagedData> n = PagedStore::Open(Env().node_order_path);
  ASSERT_TRUE(c.has_value() && n.has_value());
  EXPECT_EQ(c->store->layout(), PageLayout::kClustered);
  EXPECT_EQ(n->store->layout(), PageLayout::kNodeOrder);
  EXPECT_EQ(c->store->DataBytes(), n->store->DataBytes());
  const Graph& cg = c->data.graph;
  const Graph& ng = n->data.graph;
  ASSERT_EQ(cg.num_nodes(), ng.num_nodes());
  for (NodeId v = 0; v < cg.num_nodes(); ++v) {
    PagePin cp, np;
    std::span<const Edge> ce = cg.OutEdges(v, &cp);
    std::span<const Edge> ne = ng.OutEdges(v, &np);
    ASSERT_EQ(ce.size(), ne.size());
    for (size_t i = 0; i < ce.size(); ++i) {
      ASSERT_EQ(ce[i].other, ne[i].other) << "node " << v << " edge " << i;
    }
  }
}

TEST(PagedStore, OversizedRunsGetDedicatedPages) {
  // A star hub whose in-run exceeds the page size must still roundtrip:
  // oversized runs are stored on dedicated pages larger than page_size.
  DataGraph dg;
  dg.graph = testing::MakeStarGraph(2000);
  dg.index.Freeze();
  dg.table_first_node = {0, static_cast<NodeId>(dg.graph.num_nodes())};
  dg.node_labels.assign(dg.graph.num_nodes(), "n");
  PagedStoreOptions save;
  save.page_size = 512;  // hub run of 2000 edges cannot fit
  const std::string path = TempPath("paged_star.banks");
  ASSERT_TRUE(PagedStore::Save(dg, {}, path, save));
  std::optional<PagedData> pd = PagedStore::Open(path);
  ASSERT_TRUE(pd.has_value());
  bool saw_oversized = false;
  for (PageId p = 0; p < pd->store->NumPages(); ++p) {
    if (pd->store->PageLength(p) > save.page_size) saw_oversized = true;
  }
  EXPECT_TRUE(saw_oversized);
  PagePin pin;
  std::span<const Edge> hub = pd->data.graph.InEdges(0, &pin);
  ASSERT_EQ(hub.size(), 2000u);
  for (size_t i = 0; i < hub.size(); ++i) {
    ASSERT_EQ(hub[i].other, static_cast<NodeId>(i + 1));
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Differential grid: paged ≡ in-RAM
// ---------------------------------------------------------------------

enum class PoolSize { kPathological, kQuarter, kAmple };

struct DiffCase {
  Algorithm algorithm;
  BoundMode bound;
  size_t shards;
  PoolSize pool;
};

std::string PoolName(PoolSize p) {
  switch (p) {
    case PoolSize::kPathological:
      return "TinyPool";
    case PoolSize::kQuarter:
      return "QuarterPool";
    case PoolSize::kAmple:
      return "AmplePool";
  }
  return "?";
}

std::string AlgoName(Algorithm a) {
  switch (a) {
    case Algorithm::kBackwardMI:
      return "BackwardMI";
    case Algorithm::kBackwardSI:
      return "BackwardSI";
    case Algorithm::kBidirectional:
      return "Bidirectional";
  }
  return "?";
}

std::string BoundName(BoundMode b) {
  switch (b) {
    case BoundMode::kTight:
      return "Tight";
    case BoundMode::kLoose:
      return "Loose";
    case BoundMode::kImmediate:
      return "Immediate";
  }
  return "?";
}

size_t PoolBytes(PoolSize p, size_t data_bytes) {
  switch (p) {
    case PoolSize::kPathological:
      return 8u << 10;  // two 4K pages — far below any working set
    case PoolSize::kQuarter:
      return data_bytes / 4;
    case PoolSize::kAmple:
      return data_bytes * 2;
  }
  return 0;
}

class PagedDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(PagedDifferentialTest, PagedMatchesInRam) {
  ASSERT_TRUE(Env().ok);
  const DiffCase& c = GetParam();
  // Probe DataBytes once so the pool budget can scale with the file.
  PagedOpenOptions open;
  {
    std::optional<PagedData> probe = PagedStore::Open(Env().clustered_path);
    ASSERT_TRUE(probe.has_value());
    open.pool_bytes = PoolBytes(c.pool, probe->store->DataBytes());
  }
  std::optional<PagedData> pd = PagedStore::Open(Env().clustered_path, open);
  ASSERT_TRUE(pd.has_value());
  std::shared_ptr<PagedStore> store = pd->store;
  Engine paged(std::move(pd->data));

  SearchOptions options;
  options.k = 8;
  options.bound = c.bound;
  options.shard_count = c.shards;
  for (const auto& keywords : Env().queries) {
    SearchResult expect = Env().ram.Query(keywords, c.algorithm, options);
    SearchResult got = paged.Query(keywords, c.algorithm, options);
    ExpectSameResult(expect, got);
  }
  if (c.pool == PoolSize::kPathological) {
    // The tiny pool must actually have paged: a zero-miss run would mean
    // this suite never exercised eviction at all.
    EXPECT_GT(store->pool().stats().misses, 0u);
    EXPECT_GT(store->pool().stats().evictions, 0u);
  }
}

std::vector<DiffCase> AllDiffCases() {
  std::vector<DiffCase> cases;
  for (Algorithm a : {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                      Algorithm::kBidirectional}) {
    for (BoundMode b :
         {BoundMode::kTight, BoundMode::kLoose, BoundMode::kImmediate}) {
      for (size_t shards : {size_t{1}, size_t{4}}) {
        for (PoolSize p :
             {PoolSize::kPathological, PoolSize::kQuarter, PoolSize::kAmple}) {
          cases.push_back({a, b, shards, p});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PagedDifferentialTest, ::testing::ValuesIn(AllDiffCases()),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      const DiffCase& c = info.param;
      return AlgoName(c.algorithm) + BoundName(c.bound) + "Shards" +
             std::to_string(c.shards) + PoolName(c.pool);
    });

// ---------------------------------------------------------------------
// Layout + determinism properties
// ---------------------------------------------------------------------

TEST(PagedStore, NodeOrderLayoutAlsoMatchesInRam) {
  ASSERT_TRUE(Env().ok);
  PagedOpenOptions open;
  open.pool_bytes = 16u << 10;  // small: forces paging on both layouts
  std::optional<PagedData> pd = PagedStore::Open(Env().node_order_path, open);
  ASSERT_TRUE(pd.has_value());
  Engine paged(std::move(pd->data));
  SearchOptions options;
  options.k = 8;
  for (const auto& keywords : Env().queries) {
    SearchResult expect =
        Env().ram.Query(keywords, Algorithm::kBidirectional, options);
    SearchResult got = paged.Query(keywords, Algorithm::kBidirectional, options);
    ExpectSameResult(expect, got);
  }
}

TEST(PagedStore, FIFOEvictionAlsoMatchesInRam) {
  ASSERT_TRUE(Env().ok);
  PagedOpenOptions open;
  open.pool_bytes = 16u << 10;
  open.policy = EvictionPolicy::kFIFO;
  std::optional<PagedData> pd = PagedStore::Open(Env().clustered_path, open);
  ASSERT_TRUE(pd.has_value());
  Engine paged(std::move(pd->data));
  SearchOptions options;
  options.k = 8;
  for (const auto& keywords : Env().queries) {
    SearchResult expect =
        Env().ram.Query(keywords, Algorithm::kBackwardMI, options);
    SearchResult got = paged.Query(keywords, Algorithm::kBackwardMI, options);
    ExpectSameResult(expect, got);
  }
}

TEST(PagedStore, PagedRunsAreDeterministicAcrossRepeats) {
  ASSERT_TRUE(Env().ok);
  PagedOpenOptions open;
  open.pool_bytes = 8u << 10;
  std::optional<PagedData> pd = PagedStore::Open(Env().clustered_path, open);
  ASSERT_TRUE(pd.has_value());
  Engine paged(std::move(pd->data));
  SearchOptions options;
  options.k = 8;
  SearchResult first =
      paged.Query(Env().queries[0], Algorithm::kBidirectional, options);
  for (int run = 0; run < 3; ++run) {
    SearchResult again =
        paged.Query(Env().queries[0], Algorithm::kBidirectional, options);
    ExpectSameResult(first, again);
  }
}

TEST(PagedStore, ResolveMatchesInRam) {
  ASSERT_TRUE(Env().ok);
  PagedOpenOptions open;
  open.pool_bytes = 8u << 10;  // postings pages fault in on demand
  std::optional<PagedData> pd = PagedStore::Open(Env().clustered_path, open);
  ASSERT_TRUE(pd.has_value());
  Engine paged(std::move(pd->data));
  for (const auto& keywords : Env().queries) {
    EXPECT_EQ(Env().ram.Resolve(keywords), paged.Resolve(keywords));
  }
}

TEST(PagedStore, SearchMetricsCountPageTraffic) {
  ASSERT_TRUE(Env().ok);
  PagedOpenOptions open;
  open.pool_bytes = 8u << 10;
  std::optional<PagedData> pd = PagedStore::Open(Env().clustered_path, open);
  ASSERT_TRUE(pd.has_value());
  Engine paged(std::move(pd->data));
  SearchResult r =
      paged.Query(Env().queries[0], Algorithm::kBidirectional, {});
  EXPECT_GT(r.metrics.page_hits + r.metrics.page_misses, 0u);
  // In-RAM searches never touch the pool.
  SearchResult ram_r =
      Env().ram.Query(Env().queries[0], Algorithm::kBidirectional, {});
  EXPECT_EQ(ram_r.metrics.page_hits, 0u);
  EXPECT_EQ(ram_r.metrics.page_misses, 0u);
  EXPECT_EQ(ram_r.metrics.page_waits, 0u);
}

TEST(PagedStore, SaveWithoutPrestigeStillOpens) {
  ASSERT_TRUE(Env().ok);
  const std::string path = TempPath("paged_no_prestige.banks");
  ASSERT_TRUE(PagedStore::Save(Env().ram.data(), {}, path));
  std::optional<PagedData> pd = PagedStore::Open(path);
  ASSERT_TRUE(pd.has_value());
  EXPECT_TRUE(pd->store->prestige().empty());
  // No stored prestige: the engine recomputes PageRank through the pool,
  // landing on the same scores as the resident graph.
  Engine paged(std::move(pd->data));
  ASSERT_EQ(paged.prestige().size(), Env().ram.prestige().size());
  for (size_t i = 0; i < paged.prestige().size(); ++i) {
    ASSERT_NEAR(paged.prestige()[i], Env().ram.prestige()[i], 1e-12)
        << "node " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace banks
