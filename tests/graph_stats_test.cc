#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "datasets/dblp_gen.h"
#include "relational/graph_builder.h"
#include "test_util.h"

namespace banks {
namespace {

TEST(GraphStats, EmptyGraph) {
  GraphBuilder b;
  GraphStats s = ComputeGraphStats(b.Build());
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_EQ(s.weakly_connected_components, 0u);
  EXPECT_DOUBLE_EQ(s.out_degree_gini, 0);
}

TEST(GraphStats, PathGraphBasics) {
  Graph g = testing::MakePathGraph(5);  // 4 fwd + 4 bwd edges
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_nodes, 5u);
  EXPECT_EQ(s.num_edges, 8u);
  EXPECT_EQ(s.num_forward_edges, 4u);
  EXPECT_EQ(s.weakly_connected_components, 1u);
  EXPECT_EQ(s.largest_component_size, 5u);
  EXPECT_EQ(s.max_forward_indegree, 1u);
}

TEST(GraphStats, StarGraphHubDetected) {
  Graph g = testing::MakeStarGraph(150);
  GraphStats s = ComputeGraphStats(g, /*hub_threshold=*/100);
  EXPECT_EQ(s.hub_count, 1u);
  EXPECT_EQ(s.max_forward_indegree, 150u);
  EXPECT_EQ(s.max_forward_indegree_node, 0u);
  // Hub concentration ⇒ strongly non-uniform out-degree distribution.
  EXPECT_GT(s.out_degree_gini, 0.4);
}

TEST(GraphStats, DisconnectedComponentsCounted) {
  GraphBuilder b;
  b.AddNodes(6);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  GraphStats s = ComputeGraphStats(g);
  // {0,1}, {2,3}, {4}, {5}.
  EXPECT_EQ(s.weakly_connected_components, 4u);
  EXPECT_EQ(s.largest_component_size, 2u);
}

TEST(GraphStats, UniformGraphHasLowGini) {
  // Cycle: every node out-degree exactly 2 (fwd + bwd).
  GraphBuilder b;
  b.AddNodes(40);
  for (NodeId v = 0; v < 40; ++v) b.AddEdge(v, (v + 1) % 40);
  GraphStats s = ComputeGraphStats(b.Build());
  EXPECT_LT(s.out_degree_gini, 0.01);
}

TEST(GraphStats, SyntheticDblpIsSkewedAndConnected) {
  // The DESIGN.md claim: generators reproduce hub fan-in and heavy
  // tails. Validate on a small instance.
  DblpConfig config;
  config.num_authors = 300;
  config.num_papers = 700;
  Database db = GenerateDblp(config);
  DataGraph dg = BuildDataGraph(db);
  GraphStats s = ComputeGraphStats(dg.graph, /*hub_threshold=*/50);
  EXPECT_GT(s.hub_count, 0u) << "no hubs generated";
  EXPECT_GT(s.out_degree_gini, 0.3) << "degree distribution not skewed";
  // Papers+writes+cites form one dominant component.
  EXPECT_GT(s.largest_component_size, s.num_nodes / 2);
  EXPECT_EQ(s.num_forward_edges * 2, s.num_edges);
}

TEST(GraphStats, ToStringMentionsKeyFields) {
  Graph g = testing::MakePathGraph(3);
  std::string str = ComputeGraphStats(g).ToString();
  EXPECT_NE(str.find("nodes=3"), std::string::npos);
  EXPECT_NE(str.find("gini="), std::string::npos);
}

}  // namespace
}  // namespace banks
