// Network front door tests (src/net/): wire codec, loopback
// differential, backpressure, disconnect, malformed input, admission.
//
// The load-bearing property mirrors the serving core's: answers that
// cross the wire must be byte-identical (SameAnswer) to the in-process
// Query, for every algorithm and shard count — the socket layer decides
// only when bytes move, never what the search computes. Around it: the
// writability→credit mapping (a slow reader's task parks in credit-wait
// holding zero pool leases while the server buffers a bounded number of
// frames), mid-stream disconnects cancelling the connection's tasks,
// malformed/oversized/truncated frames failing without crashing the
// server, and admission rejections surfacing as typed terminal
// statuses.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "net/client.h"
#include "net/wire.h"
#include "serve/scheduler.h"
#include "util/timer.h"

namespace banks::net {
namespace {

void ExpectSameDeterministicMetrics(const SearchMetrics& a,
                                    const SearchMetrics& b) {
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.edges_relaxed, b.edges_relaxed);
  EXPECT_EQ(a.propagation_steps, b.propagation_steps);
  EXPECT_EQ(a.answers_generated, b.answers_generated);
  EXPECT_EQ(a.answers_output, b.answers_output);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

void ExpectSameAnswers(const std::vector<AnswerTree>& got,
                       const std::vector<AnswerTree>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameAnswer(got[i], want[i])) << "answer " << i << " differs";
  }
}

/// Shared DBLP engine — big enough that broad type-name queries ("paper
/// author") release hundreds of answers, which the backpressure tests
/// need to overflow shrunken kernel socket buffers.
const Engine& SharedEngine() {
  static const Engine* engine = [] {
    DblpConfig config;
    config.num_authors = 400;
    config.num_papers = 800;
    config.num_conferences = 12;
    return new Engine(Engine::FromDatabase(GenerateDblp(config)));
  }();
  return *engine;
}

std::vector<std::string> Keywords() { return {"conference", "author"}; }

SearchOptions BaseOptions() {
  SearchOptions options;
  options.k = 8;
  options.max_nodes_explored = 100'000;
  return options;
}

/// Polls `pred` (scheduler state is advanced by worker threads) until
/// true or the deadline; returns the final value.
bool PollFor(const std::function<bool()>& pred, double seconds = 10.0) {
  Timer timer;
  while (timer.ElapsedSeconds() < seconds) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// ---- Wire codec -----------------------------------------------------------

TEST(NetWire, SearchRequestRoundTrip) {
  SearchRequest req;
  req.algorithm = Algorithm::kBackwardSI;
  req.options.k = 17;
  req.options.dmax = 9;
  req.options.lambda = 0.3;
  req.options.combine = ActivationCombine::kSum;
  req.options.bound = BoundMode::kTight;
  req.options.shard_count = 4;
  req.deadline_seconds = 2.5;
  req.initial_credits = 3;
  req.keywords = {"gray", "transaction", "db"};

  WireWriter w;
  WriteSearchRequest(&w, req);
  WireReader r(w.data());
  SearchRequest got;
  ASSERT_TRUE(ReadSearchRequest(&r, &got));
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(got.algorithm, req.algorithm);
  EXPECT_EQ(got.options.k, req.options.k);
  EXPECT_EQ(got.options.dmax, req.options.dmax);
  EXPECT_DOUBLE_EQ(got.options.lambda, req.options.lambda);
  EXPECT_EQ(got.options.combine, req.options.combine);
  EXPECT_EQ(got.options.bound, req.options.bound);
  EXPECT_EQ(got.options.shard_count, req.options.shard_count);
  EXPECT_DOUBLE_EQ(got.deadline_seconds, req.deadline_seconds);
  EXPECT_EQ(got.initial_credits, req.initial_credits);
  EXPECT_EQ(got.keywords, req.keywords);
}

TEST(NetWire, AnswerTreeRoundTrip) {
  AnswerTree tree;
  tree.root = 42;
  tree.edges = {{42, 7, 1.5f}, {42, 9, 0.25f}};
  tree.keyword_nodes = {7, 9};
  tree.keyword_distances = {1.5, 0.25};
  tree.edge_score_raw = 1.75;
  tree.node_prestige = 0.5;
  tree.score = 0.123;
  tree.generated_at = 0.001;
  tree.explored_at_generation = 99;
  tree.touched_at_generation = 200;

  WireWriter w;
  WriteAnswerTree(&w, tree);
  WireReader r(w.data());
  AnswerTree got;
  ASSERT_TRUE(ReadAnswerTree(&r, &got));
  EXPECT_TRUE(r.Done());
  EXPECT_TRUE(SameAnswer(got, tree));
  EXPECT_DOUBLE_EQ(got.score, tree.score);
  EXPECT_EQ(got.explored_at_generation, tree.explored_at_generation);
}

TEST(NetWire, ReaderRejectsTruncationAndTrailingJunk) {
  AnswerTree tree;
  tree.root = 1;
  tree.edges = {{1, 2, 1.0f}};
  tree.keyword_nodes = {2};
  tree.keyword_distances = {1.0};
  WireWriter w;
  WriteAnswerTree(&w, tree);

  // Any strict prefix must fail cleanly — including prefixes that cut an
  // announced vector short (the Count() guard).
  const std::string& full = w.data();
  for (size_t n = 0; n < full.size(); ++n) {
    WireReader r(full.data(), n);
    AnswerTree out;
    EXPECT_FALSE(ReadAnswerTree(&r, &out)) << "prefix " << n << " decoded";
  }
  // Trailing junk: decode succeeds but Done() is false (the server
  // treats that as kBadPayload).
  std::string padded = full + "xx";
  WireReader r(padded);
  AnswerTree out;
  EXPECT_TRUE(ReadAnswerTree(&r, &out));
  EXPECT_FALSE(r.Done());
}

TEST(NetWire, HeaderRejectsOversizeAndBadVersion) {
  std::string frame = EncodeFrame(FrameType::kPing, 7, "abc");
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), kDefaultMaxFrameBytes, &header));
  EXPECT_EQ(header.payload_bytes, 3u);
  EXPECT_EQ(header.request_id, 7u);
  EXPECT_FALSE(DecodeHeader(frame.data(), /*max_payload=*/2, &header));
  frame[4] = 9;  // version byte
  EXPECT_FALSE(DecodeHeader(frame.data(), kDefaultMaxFrameBytes, &header));
}

// ---- Hello / Ping ---------------------------------------------------------

TEST(NetServer, HelloHandshakeAndPing) {
  const Engine& engine = SharedEngine();
  Server server(&engine);
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);

  std::string error;
  auto client = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(client, nullptr) << error;
  EXPECT_EQ(client->server_info().nodes, engine.graph().num_nodes());
  EXPECT_EQ(client->server_info().edges, engine.graph().num_edges());
  EXPECT_EQ(client->server_info().server_name, "banks_server");
  EXPECT_TRUE(client->Ping());
  EXPECT_TRUE(client->Ping());

  client.reset();
  server.Shutdown();
  Server::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_open, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ---- Loopback differential: wire ≡ in-process, per algorithm × shards ----

struct NetCase {
  Algorithm algorithm;
  uint32_t shards;
};

std::string NetCaseName(const ::testing::TestParamInfo<NetCase>& info) {
  std::string name = AlgorithmName(info.param.algorithm);
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name + "Shards" + std::to_string(info.param.shards);
}

class NetDifferentialTest : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetDifferentialTest, WireQueryMatchesInProcess) {
  const NetCase& c = GetParam();
  const Engine& engine = SharedEngine();
  SearchOptions options = BaseOptions();
  options.shard_count = c.shards;
  SearchResult reference = engine.Query(Keywords(), c.algorithm, options);
  ASSERT_FALSE(reference.answers.empty());

  Server server(&engine);
  ASSERT_TRUE(server.Start());
  std::string error;
  auto client = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(client, nullptr) << error;

  NetResult result = client->Query(Keywords(), c.algorithm, options);
  EXPECT_EQ(result.status, SubscribeStatus::kCompleted);
  ExpectSameAnswers(result.answers, reference.answers);
  ExpectSameDeterministicMetrics(result.metrics, reference.metrics);
}

TEST_P(NetDifferentialTest, PullStreamMatchesInProcess) {
  const NetCase& c = GetParam();
  const Engine& engine = SharedEngine();
  SearchOptions options = BaseOptions();
  options.shard_count = c.shards;
  SearchResult reference = engine.Query(Keywords(), c.algorithm, options);
  ASSERT_FALSE(reference.answers.empty());

  Server server(&engine);
  ASSERT_TRUE(server.Start());
  std::string error;
  auto client = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(client, nullptr) << error;

  // Pull one answer per kNext credit — the server may run arbitrarily
  // ahead internally but releases answer frames only against credits.
  ClientStream stream = client->OpenStream(Keywords(), c.algorithm, options);
  std::vector<AnswerTree> answers;
  while (auto answer = stream.Next()) answers.push_back(std::move(*answer));
  EXPECT_EQ(stream.status(), SubscribeStatus::kCompleted);
  ExpectSameAnswers(answers, reference.answers);
  ExpectSameDeterministicMetrics(stream.metrics(), reference.metrics);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, NetDifferentialTest,
    ::testing::Values(NetCase{Algorithm::kBackwardMI, 1},
                      NetCase{Algorithm::kBackwardSI, 1},
                      NetCase{Algorithm::kBidirectional, 1},
                      NetCase{Algorithm::kBackwardMI, 4},
                      NetCase{Algorithm::kBackwardSI, 4},
                      NetCase{Algorithm::kBidirectional, 4}),
    NetCaseName);

// ---- Backpressure: slow reader parks the task, bounded server memory -----

TEST(NetServer, SlowReaderParksOnCreditsWithBoundedBuffering) {
  const Engine& engine = SharedEngine();
  SearchOptions options = BaseOptions();
  options.k = 300;  // enough answer bytes to overflow the tiny buffers
  SearchResult reference =
      engine.Query({"paper", "author"}, Algorithm::kBidirectional, options);
  ASSERT_GE(reference.answers.size(), 100u)
      << "workload must release many answers for this test";

  ServerOptions server_options;
  server_options.credit_window = 4;
  server_options.send_buffer_bytes = 1;  // kernel clamps to its minimum
  Server server(&engine, server_options);
  ASSERT_TRUE(server.Start());

  ClientOptions client_options;
  client_options.recv_buffer_bytes = 1;
  std::string error;
  auto client =
      Client::Connect("127.0.0.1", server.port(), client_options, &error);
  ASSERT_NE(client, nullptr) << error;

  // Open a push subscription and DON'T read: the kernel buffers fill,
  // answer frames stop flushing, no credits are granted, and the task —
  // its search long since finished — must park in credit-wait holding
  // zero pool leases (detached into compact StreamState).
  ClientStream stream =
      client->Subscribe({"paper", "author"}, Algorithm::kBidirectional,
                        options);
  Scheduler& scheduler = server.scheduler();
  ASSERT_TRUE(PollFor([&] {
    Scheduler::Stats stats = scheduler.Snapshot();
    return stats.credit_waiting == 1 && stats.contexts_attached == 0;
  })) << "slow reader's task never parked in credit-wait";
  EXPECT_EQ(scheduler.context_pool().leased(), 0u);

  // Parked means parked: the state must hold while the reader stays
  // stalled, with server-side buffering bounded by the credit window
  // (W answer frames at most; +1 for a final that cannot exist yet).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.credit_waiting, 1u);
  EXPECT_EQ(stats.contexts_attached, 0u);
  EXPECT_EQ(scheduler.context_pool().leased(), 0u);
  EXPECT_LE(server.stats().output_backlog_frames,
            server_options.credit_window + 1);

  // Resume reading: delivery restarts off the compact state and the
  // full sequence arrives intact — byte-identical to the reference.
  NetResult result = stream.Drain();
  EXPECT_EQ(result.status, SubscribeStatus::kCompleted);
  ExpectSameAnswers(result.answers, reference.answers);
  ExpectSameDeterministicMetrics(result.metrics, reference.metrics);
}

// ---- Mid-stream disconnect cancels the task ------------------------------

TEST(NetServer, MidStreamDisconnectCancelsTask) {
  const Engine& engine = SharedEngine();
  SearchOptions options = BaseOptions();
  options.k = 300;

  ServerOptions server_options;
  server_options.credit_window = 4;
  server_options.send_buffer_bytes = 1;
  Server server(&engine, server_options);
  ASSERT_TRUE(server.Start());

  ClientOptions client_options;
  client_options.recv_buffer_bytes = 1;
  std::string error;
  auto client =
      Client::Connect("127.0.0.1", server.port(), client_options, &error);
  ASSERT_NE(client, nullptr) << error;
  ClientStream stream =
      client->Subscribe({"paper", "author"}, Algorithm::kBidirectional,
                        options);
  ASSERT_TRUE(static_cast<bool>(stream));
  Scheduler& scheduler = server.scheduler();
  ASSERT_TRUE(PollFor(
      [&] { return scheduler.Snapshot().credit_waiting == 1; }));

  // Abrupt disconnect with the request still open: the server must
  // cancel the task (scheduler sees a terminal kCancelled), release
  // every lease, and drop the connection's buffered frames.
  client.reset();
  EXPECT_TRUE(PollFor([&] { return server.stats().requests_open == 0; }))
      << "request still open after disconnect";
  EXPECT_TRUE(PollFor([&] { return server.stats().connections_open == 0; }));
  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.credit_waiting, 0u);
  EXPECT_EQ(stats.contexts_attached, 0u);
  EXPECT_EQ(scheduler.context_pool().leased(), 0u);
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_TRUE(PollFor([&] { return server.stats().output_backlog_frames == 0; }));

  // The server survives and serves fresh connections.
  auto fresh = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(fresh, nullptr) << error;
  NetResult result =
      fresh->Query(Keywords(), Algorithm::kBidirectional, BaseOptions());
  EXPECT_EQ(result.status, SubscribeStatus::kCompleted);
  EXPECT_FALSE(result.answers.empty());
}

// ---- Malformed input ------------------------------------------------------

/// Raw-socket helper for protocol-abuse tests: speaks bytes, not the
/// Client's well-formed frames.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Handshake() {
    WireWriter w;
    WriteHello(&w, HelloRequest{});
    if (!Send(EncodeFrame(FrameType::kHello, 0, w.data()))) return false;
    FrameHeader header;
    std::string payload;
    return RecvFrame(&header, &payload) &&
           header.type == static_cast<uint8_t>(FrameType::kHelloOk);
  }

  /// Reads one frame (poll-timeout 5s per read).
  bool RecvFrame(FrameHeader* header, std::string* payload) {
    char raw[kFrameHeaderBytes];
    if (!RecvExact(raw, sizeof raw)) return false;
    if (!DecodeHeader(raw, kDefaultMaxFrameBytes, header)) return false;
    payload->resize(header->payload_bytes);
    return RecvExact(payload->data(), payload->size());
  }

  /// True if the server closes the connection (EOF) within 5 seconds,
  /// skipping any still-buffered frames before the close.
  bool RecvEof() {
    char buf[4096];
    for (;;) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, 5000) <= 0) return false;
      ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK;
    }
  }

 private:
  bool RecvExact(char* buf, size_t n) {
    size_t off = 0;
    while (off < n) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, 5000) <= 0) return false;
      ssize_t r = ::recv(fd_, buf + off, n - off, 0);
      if (r <= 0) return false;
      off += static_cast<size_t>(r);
    }
    return true;
  }

  int fd_ = -1;
};

std::string ErrorFrameOf(RawConn* conn, ErrorCode* code) {
  FrameHeader header;
  std::string payload;
  if (!conn->RecvFrame(&header, &payload)) return "no frame";
  if (header.type != static_cast<uint8_t>(FrameType::kError)) {
    return "not an error frame";
  }
  WireReader r(payload);
  ErrorReply reply;
  if (!ReadErrorReply(&r, &reply)) return "bad error payload";
  *code = reply.code;
  return "";
}

TEST(NetServer, MalformedFramesRejectedWithoutCrashing) {
  const Engine& engine = SharedEngine();
  Server server(&engine);
  ASSERT_TRUE(server.Start());

  {  // Garbage bytes: an absurd header is fatal before any parsing.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.Send(std::string(64, '\xff')));
    EXPECT_TRUE(conn.RecvEof()) << "server must close on garbage input";
  }
  {  // Oversized announcement: payload_bytes beyond the frame cap.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    std::string frame = EncodeFrame(FrameType::kHello, 0, "");
    uint32_t huge = 512u << 20;
    std::memcpy(frame.data(), &huge, sizeof huge);
    ASSERT_TRUE(conn.Send(frame));
    ErrorCode code;
    EXPECT_EQ(ErrorFrameOf(&conn, &code), "");
    EXPECT_EQ(code, ErrorCode::kBadFrame);
    EXPECT_TRUE(conn.RecvEof());
  }
  {  // Hello gating: any other first frame is fatal.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.Send(EncodeFrame(FrameType::kPing, 0, "")));
    ErrorCode code;
    EXPECT_EQ(ErrorFrameOf(&conn, &code), "");
    EXPECT_EQ(code, ErrorCode::kHelloRequired);
    EXPECT_TRUE(conn.RecvEof());
  }
  {  // Bad hello magic (e.g. an endianness-mismatched peer).
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    WireWriter w;
    HelloRequest hello;
    hello.magic = 0xdeadbeef;
    WriteHello(&w, hello);
    ASSERT_TRUE(conn.Send(EncodeFrame(FrameType::kHello, 0, w.data())));
    ErrorCode code;
    EXPECT_EQ(ErrorFrameOf(&conn, &code), "");
    EXPECT_EQ(code, ErrorCode::kBadMagic);
    EXPECT_TRUE(conn.RecvEof());
  }
  {  // Unknown type and truncated search payload after a valid
     // handshake: request-level errors; the connection stays usable.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.Handshake());
    std::string frame = EncodeFrame(FrameType::kHello, 3, "");
    frame[5] = 99;  // type byte: no such frame type
    ASSERT_TRUE(conn.Send(frame));
    ErrorCode code;
    EXPECT_EQ(ErrorFrameOf(&conn, &code), "");
    EXPECT_EQ(code, ErrorCode::kUnknownType);
    ASSERT_TRUE(conn.Send(EncodeFrame(FrameType::kQuery, 4, "\x01\x02")));
    EXPECT_EQ(ErrorFrameOf(&conn, &code), "");
    EXPECT_EQ(code, ErrorCode::kBadPayload);
    // Still alive: ping round-trips on the same connection.
    ASSERT_TRUE(conn.Send(EncodeFrame(FrameType::kPing, 5, "hi")));
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(conn.RecvFrame(&header, &payload));
    EXPECT_EQ(header.type, static_cast<uint8_t>(FrameType::kPong));
    EXPECT_EQ(payload, "hi");
  }
  {  // Truncated frame then abrupt close: nothing to answer, no crash.
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.Send(std::string(7, 'x')));
  }

  EXPECT_GE(server.stats().protocol_errors, 5u);
  // The server survived all of it: a well-behaved client still works.
  std::string error;
  auto client = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(client, nullptr) << error;
  NetResult result =
      client->Query(Keywords(), Algorithm::kBidirectional, BaseOptions());
  EXPECT_EQ(result.status, SubscribeStatus::kCompleted);
  EXPECT_FALSE(result.answers.empty());
}

// ---- Admission rejection & deadlines as wire statuses --------------------

TEST(NetServer, AdmissionRejectionSurfacesAsTerminalStatus) {
  const Engine& engine = SharedEngine();
  // External manual-drive scheduler: admission decisions are synchronous
  // and deterministic — one run slot, no queue, and nothing executes
  // until this test drives it.
  SchedulerOptions scheduler_options;
  scheduler_options.num_workers = 0;
  scheduler_options.max_running = 1;
  scheduler_options.max_queued = 0;
  Scheduler scheduler(scheduler_options);
  ServerOptions server_options;
  server_options.scheduler = &scheduler;
  Server server(&engine, server_options);
  ASSERT_TRUE(server.Start());

  std::string error;
  auto holder = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(holder, nullptr) << error;
  auto rejected = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(rejected, nullptr) << error;

  // First request takes the only run slot (admitted, undriven) ...
  ClientStream held =
      holder->Subscribe(Keywords(), Algorithm::kBidirectional, BaseOptions());
  ASSERT_TRUE(PollFor([&] { return server.stats().requests_open == 1; }));
  // ... so the second is rejected at admission, surfacing as a typed
  // terminal kFinal — a protocol-visible error, not a dropped byte.
  NetResult overflow =
      rejected->Query(Keywords(), Algorithm::kBidirectional, BaseOptions());
  EXPECT_EQ(overflow.status, SubscribeStatus::kRejected);
  EXPECT_TRUE(overflow.answers.empty());

  // Drive the held request to completion from this thread; its k (8)
  // fits the default credit window, so no flush-grants are needed
  // before the terminal push.
  SearchResult reference =
      engine.Query(Keywords(), Algorithm::kBidirectional, BaseOptions());
  ASSERT_TRUE(PollFor([&] {
    while (scheduler.DriveOne()) {
    }
    return server.stats().requests_open == 0;
  }));
  NetResult result = held.Drain();
  EXPECT_EQ(result.status, SubscribeStatus::kCompleted);
  ExpectSameAnswers(result.answers, reference.answers);
}

TEST(NetServer, DeadlineExpiresAsTerminalStatus) {
  const Engine& engine = SharedEngine();
  SchedulerOptions scheduler_options;
  scheduler_options.num_workers = 0;  // manual: the deadline passes
                                      // before anything runs
  Scheduler scheduler(scheduler_options);
  ServerOptions server_options;
  server_options.scheduler = &scheduler;
  Server server(&engine, server_options);
  ASSERT_TRUE(server.Start());

  std::string error;
  auto client = Client::Connect("127.0.0.1", server.port(), {}, &error);
  ASSERT_NE(client, nullptr) << error;
  ClientStream stream =
      client->Subscribe(Keywords(), Algorithm::kBidirectional, BaseOptions(),
                        /*deadline_seconds=*/1e-3);
  ASSERT_TRUE(PollFor([&] { return server.stats().requests_open == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(PollFor([&] {
    while (scheduler.DriveOne()) {
    }
    return server.stats().requests_open == 0;
  }));
  NetResult result = stream.Drain();
  EXPECT_EQ(result.status, SubscribeStatus::kDeadlineExpired);
}

// ---- Graceful shutdown ----------------------------------------------------

TEST(NetServer, ShutdownDrainsInFlightRequests) {
  const Engine& engine = SharedEngine();
  SearchOptions options = BaseOptions();
  options.k = 300;

  ServerOptions server_options;
  server_options.credit_window = 4;
  server_options.send_buffer_bytes = 1;
  Server server(&engine, server_options);
  ASSERT_TRUE(server.Start());

  ClientOptions client_options;
  client_options.recv_buffer_bytes = 1;
  std::string error;
  auto client =
      Client::Connect("127.0.0.1", server.port(), client_options, &error);
  ASSERT_NE(client, nullptr) << error;

  // A stalled push subscription: search finished, delivery parked on
  // credits — in flight from the server's point of view.
  ClientStream stream =
      client->Subscribe({"paper", "author"}, Algorithm::kBidirectional,
                        options);
  ASSERT_TRUE(PollFor([&] {
    return server.scheduler().Snapshot().credit_waiting == 1;
  }));

  // Shutdown must not hang on it, and the client must still observe a
  // terminal status. The client resumes reading concurrently, so either
  // the drain completes the delivery (kCompleted) or the grace deadline
  // cancels it (kCancelled) — both end with OnComplete flushed and the
  // connection closed; what may NOT happen is a hang or a lost final.
  std::thread shutdown([&] { server.Shutdown(/*drain_seconds=*/0.5); });
  NetResult result = stream.Drain();
  shutdown.join();
  EXPECT_TRUE(result.status == SubscribeStatus::kCompleted ||
              result.status == SubscribeStatus::kCancelled)
      << "terminal status: " << SubscribeStatusName(result.status);
  EXPECT_EQ(server.stats().connections_open, 0u);
  EXPECT_EQ(server.stats().requests_open, 0u);
  EXPECT_EQ(server.scheduler().context_pool().leased(), 0u);
  EXPECT_EQ(server.stats().output_backlog_frames, 0u);
}

}  // namespace
}  // namespace banks::net
