#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <optional>
#include <set>
#include <string>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "datasets/imdb_gen.h"
#include "datasets/patents_gen.h"
#include "datasets/tsv_loader.h"
#include "datasets/vocab.h"
#include "relational/graph_builder.h"

namespace banks {
namespace {

// ----------------------------------------------------------- Vocabulary --

TEST(Vocabulary, WordsAreUnique) {
  Vocabulary v(2000, 0.9);
  std::set<std::string> seen;
  for (size_t r = 0; r < v.size(); ++r) {
    EXPECT_TRUE(seen.insert(v.Word(r)).second) << "duplicate " << v.Word(r);
  }
}

TEST(Vocabulary, WordsAreDeterministic) {
  Vocabulary a(100, 0.9), b(100, 0.9);
  for (size_t r = 0; r < 100; ++r) EXPECT_EQ(a.Word(r), b.Word(r));
}

TEST(Vocabulary, LowRanksSampledMoreOften) {
  Vocabulary v(1000, 1.0);
  Rng rng(3);
  size_t low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    size_t r = v.SampleRank(&rng);
    if (r < 10) low++;
    if (r >= 500) high++;
  }
  EXPECT_GT(low, high * 2);
}

TEST(Vocabulary, TitleHasRequestedWordCount) {
  Vocabulary v(100, 0.9);
  Rng rng(1);
  std::string title = v.SampleTitle(&rng, 5);
  EXPECT_EQ(std::count(title.begin(), title.end(), ' '), 4);
}

TEST(NameGenerator, NamesHaveFirstAndLast) {
  NameGenerator g(50, 0.9);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    std::string name = g.SampleName(&rng);
    EXPECT_NE(name.find(' '), std::string::npos);
  }
}

// ------------------------------------------------------------ Generators --

TEST(DblpGenerator, SchemaAndSizes) {
  DblpConfig config;
  config.num_authors = 100;
  config.num_papers = 200;
  config.num_conferences = 10;
  Database db = GenerateDblp(config);
  ASSERT_EQ(db.num_tables(), 5u);
  EXPECT_EQ(db.FindTable("author")->num_rows(), 100u);
  EXPECT_EQ(db.FindTable("paper")->num_rows(), 200u);
  EXPECT_EQ(db.FindTable("conference")->num_rows(), 10u);
  EXPECT_GE(db.FindTable("writes")->num_rows(), 200u);  // ≥1 author/paper
  EXPECT_TRUE(db.indexes_built());
}

TEST(DblpGenerator, DeterministicForSeed) {
  DblpConfig config;
  config.num_authors = 50;
  config.num_papers = 80;
  Database a = GenerateDblp(config);
  Database b = GenerateDblp(config);
  EXPECT_EQ(a.TotalRows(), b.TotalRows());
  EXPECT_EQ(a.table(1).RowText(17), b.table(1).RowText(17));
}

TEST(DblpGenerator, ForeignKeysInRange) {
  DblpConfig config;
  config.num_authors = 60;
  config.num_papers = 120;
  Database db = GenerateDblp(config);
  const Table& writes = *db.FindTable("writes");
  for (RowId r = 0; r < static_cast<RowId>(writes.num_rows()); ++r) {
    EXPECT_GE(writes.FkAt(r, 0), 0);
    EXPECT_LT(writes.FkAt(r, 0), static_cast<RowId>(config.num_authors));
    EXPECT_GE(writes.FkAt(r, 1), 0);
    EXPECT_LT(writes.FkAt(r, 1), static_cast<RowId>(config.num_papers));
  }
  const Table& cites = *db.FindTable("cites");
  for (RowId r = 0; r < static_cast<RowId>(cites.num_rows()); ++r) {
    // Citations point strictly backward in publication order.
    EXPECT_LT(cites.FkAt(r, 1), cites.FkAt(r, 0));
  }
}

TEST(DblpGenerator, ProductivityIsSkewed) {
  DblpConfig config;
  config.num_authors = 200;
  config.num_papers = 2000;
  Database db = GenerateDblp(config);
  const Table& writes = *db.FindTable("writes");
  std::vector<size_t> per_author(config.num_authors, 0);
  for (RowId r = 0; r < static_cast<RowId>(writes.num_rows()); ++r) {
    per_author[static_cast<size_t>(writes.FkAt(r, 0))]++;
  }
  size_t max_papers = *std::max_element(per_author.begin(), per_author.end());
  double mean =
      static_cast<double>(writes.num_rows()) / config.num_authors;
  // The most prolific author dwarfs the mean (hub fan-in pathology).
  EXPECT_GT(static_cast<double>(max_papers), 8 * mean);
}

TEST(DblpGenerator, KeywordFrequenciesAreSkewed) {
  DblpConfig config;
  Database db = GenerateDblp(config);
  DataGraph dg = BuildDataGraph(db);
  Vocabulary vocab(config.vocab_size, config.zipf_theta);
  size_t df_top = dg.index.MatchCount(vocab.Word(0));
  size_t df_rare = dg.index.MatchCount(vocab.Word(config.vocab_size - 1));
  EXPECT_GT(df_top, 100u);  // frequent term matches many papers
  EXPECT_LT(df_rare, df_top / 20);
}

TEST(ImdbGenerator, SchemaAndLinks) {
  ImdbConfig config;
  config.num_people = 120;
  config.num_movies = 150;
  Database db = GenerateImdb(config);
  ASSERT_EQ(db.num_tables(), 5u);
  EXPECT_EQ(db.FindTable("movie")->num_rows(), 150u);
  EXPECT_EQ(db.FindTable("directs")->num_rows(), 150u);  // one per movie
  EXPECT_GE(db.FindTable("acts_in")->num_rows(), 150u);
  // Genre names include the fixed list.
  EXPECT_EQ(db.table(0).RowText(0), "drama");
}

TEST(PatentsGenerator, SchemaAndAssignees) {
  PatentsConfig config;
  config.num_patents = 300;
  config.num_inventors = 150;
  Database db = GeneratePatents(config);
  ASSERT_EQ(db.num_tables(), 6u);
  EXPECT_EQ(db.table(0).RowText(0), "microsoft");
  const Table& patent = *db.FindTable("patent");
  // Assignee skew: the top company owns far more than the average.
  std::vector<size_t> per_assignee(config.num_assignees, 0);
  for (RowId r = 0; r < static_cast<RowId>(patent.num_rows()); ++r) {
    per_assignee[static_cast<size_t>(patent.FkAt(r, 0))]++;
  }
  EXPECT_GT(per_assignee[0],
            patent.num_rows() / config.num_assignees * 4);
}

TEST(Generators, DataGraphsAreWellFormed) {
  DblpConfig dblp;
  dblp.num_authors = 80;
  dblp.num_papers = 150;
  ImdbConfig imdb;
  imdb.num_people = 80;
  imdb.num_movies = 100;
  PatentsConfig patents;
  patents.num_patents = 120;
  patents.num_inventors = 60;

  for (Database db : {GenerateDblp(dblp), GenerateImdb(imdb),
                      GeneratePatents(patents)}) {
    DataGraph dg = BuildDataGraph(db);
    EXPECT_EQ(dg.graph.num_nodes(), db.TotalRows());
    EXPECT_EQ(dg.node_labels.size(), db.TotalRows());
    EXPECT_GT(dg.graph.num_edges(), 0u);
    // Every edge endpoint is a valid node.
    for (NodeId v = 0; v < dg.graph.num_nodes(); ++v) {
      for (const Edge& e : dg.graph.OutEdges(v)) {
        EXPECT_LT(e.other, dg.graph.num_nodes());
        EXPECT_GT(e.weight, 0.0f);
      }
    }
  }
}

// ------------------------------------------------------- TSV ingestion --

class TsvLoaderTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "tsv_loader_test_" + name;
  }
  std::string WriteFile(const std::string& name, const std::string& body) {
    std::string path = Path(name);
    std::ofstream out(path, std::ios::trunc);
    out << body;
    return path;
  }
};

TEST_F(TsvLoaderTest, LoadsGraphAndIndexesTypeLabelAndText) {
  // Rows deliberately out of id order; a comment, a blank line, a CRLF
  // line ending, an untyped node, and an explicit edge weight.
  std::string nodes = WriteFile("a.nodes.tsv",
                                "# id\ttype\tlabel\ttext\n"
                                "1\tauthor\tjim gray\n"
                                "\n"
                                "0\tpaper\ttransaction concepts\tacid\r\n"
                                "2\t\torphan\n"
                                "3\tauthor\tpat helland\n");
  std::string edges = WriteFile("a.edges.tsv",
                                "0\t1\n"
                                "# weighted edge\n"
                                "0\t3\t2.5\n");
  std::string error;
  TsvLoadStats stats;
  std::optional<DataGraph> dg =
      LoadTsvGraph(nodes, edges, {}, &error, &stats);
  ASSERT_TRUE(dg.has_value()) << error;
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.edges, 2u);
  EXPECT_EQ(stats.comment_lines, 3u);
  EXPECT_EQ(dg->graph.num_nodes(), 4u);
  EXPECT_EQ(dg->node_labels[0], "paper#0 [transaction concepts]");
  EXPECT_EQ(dg->node_labels[2], "node#2 [orphan]");

  // The whole point of the loader: the result is queryable. The type
  // name matches every node of that type (it rides in the indexed
  // text), label and text tokens match their nodes, and search finds a
  // connecting tree.
  Engine engine(std::move(*dg));
  auto origins = engine.Resolve({"author", "acid", "gray"});
  EXPECT_EQ(origins[0], (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(origins[1], (std::vector<NodeId>{0}));
  EXPECT_EQ(origins[2], (std::vector<NodeId>{1}));
  SearchResult result =
      engine.Query({"gray", "helland"}, Algorithm::kBidirectional);
  ASSERT_FALSE(result.answers.empty());
  // The connecting tree spans both authors (linked through paper 0).
  const auto& kn = result.answers[0].keyword_nodes;
  EXPECT_NE(std::find(kn.begin(), kn.end(), 1u), kn.end());
  EXPECT_NE(std::find(kn.begin(), kn.end(), 3u), kn.end());
}

TEST_F(TsvLoaderTest, RejectsMalformedInputWithLineDiagnostics) {
  std::string good_nodes =
      WriteFile("g.nodes.tsv", "0\tpaper\tp0\n1\tauthor\ta1\n");
  std::string good_edges = WriteFile("g.edges.tsv", "0\t1\n");
  struct Case {
    std::string nodes_body;
    std::string edges_body;  // empty = use good edges
    std::string expect;      // substring of the error
  };
  const Case cases[] = {
      {"0\tpaper\n", "", "expected"},                      // too few fields
      {"0\tpaper\tp0\n0\tauthor\ta\n", "", "duplicate"},   // duplicate id
      {"0\tpaper\tp0\n2\tauthor\ta\n", "", "not dense"},   // gap
      {"x\tpaper\tp0\n", "", "bad node id"},
      {"", "", "no nodes"},
      {"0\tpaper\tp0\n1\tauthor\ta1\n", "0\t5\n", "out of range"},
      {"0\tpaper\tp0\n1\tauthor\ta1\n", "0\t1\t-2\n", "positive"},
      {"0\tpaper\tp0\n1\tauthor\ta1\n", "0\t1\tabc\n", "bad edge weight"},
  };
  for (const Case& c : cases) {
    std::string nodes = WriteFile("bad.nodes.tsv", c.nodes_body);
    std::string edges = c.edges_body.empty()
                            ? good_edges
                            : WriteFile("bad.edges.tsv", c.edges_body);
    std::string error;
    EXPECT_FALSE(LoadTsvGraph(nodes, edges, {}, &error).has_value());
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "error was: " << error;
  }
  std::string error;
  EXPECT_FALSE(
      LoadTsvGraph(Path("missing.tsv"), good_edges, {}, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace banks
