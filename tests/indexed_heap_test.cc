#include "util/indexed_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace banks {
namespace {

TEST(IndexedHeap, EmptyBehaviour) {
  IndexedHeap<double> h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.Contains(0));
}

TEST(IndexedHeap, MaxHeapPopsHighestFirst) {
  IndexedHeap<double> h;
  h.Push(0, 1.0);
  h.Push(1, 5.0);
  h.Push(2, 3.0);
  EXPECT_EQ(h.Top(), 1u);
  EXPECT_DOUBLE_EQ(h.TopPriority(), 5.0);
  EXPECT_EQ(h.Pop(), 1u);
  EXPECT_EQ(h.Pop(), 2u);
  EXPECT_EQ(h.Pop(), 0u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, MinHeapWithGreater) {
  IndexedHeap<double, std::greater<double>> h;
  h.Push(0, 4.0);
  h.Push(1, 1.0);
  h.Push(2, 2.5);
  EXPECT_EQ(h.Pop(), 1u);
  EXPECT_EQ(h.Pop(), 2u);
  EXPECT_EQ(h.Pop(), 0u);
}

TEST(IndexedHeap, UpdateRaisesPriority) {
  IndexedHeap<double> h;
  h.Push(0, 1.0);
  h.Push(1, 2.0);
  h.Update(0, 10.0);
  EXPECT_EQ(h.Top(), 0u);
  EXPECT_DOUBLE_EQ(h.PriorityOf(0), 10.0);
}

TEST(IndexedHeap, UpdateLowersPriority) {
  IndexedHeap<double> h;
  h.Push(0, 5.0);
  h.Push(1, 2.0);
  h.Update(0, 1.0);
  EXPECT_EQ(h.Top(), 1u);
}

TEST(IndexedHeap, UpdateInsertsWhenAbsent) {
  IndexedHeap<double> h;
  h.Update(7, 3.0);
  EXPECT_TRUE(h.Contains(7));
  EXPECT_EQ(h.Top(), 7u);
}

TEST(IndexedHeap, EraseMiddleElement) {
  IndexedHeap<double> h;
  for (uint32_t i = 0; i < 10; ++i) h.Push(i, static_cast<double>(i));
  h.Erase(5);
  EXPECT_FALSE(h.Contains(5));
  EXPECT_EQ(h.size(), 9u);
  std::vector<uint32_t> popped;
  while (!h.empty()) popped.push_back(h.Pop());
  EXPECT_EQ(popped.size(), 9u);
  EXPECT_TRUE(std::is_sorted(popped.rbegin(), popped.rend()));
}

TEST(IndexedHeap, ClearResetsMembership) {
  IndexedHeap<double> h;
  h.Push(3, 1.0);
  h.Push(4, 2.0);
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(3));
  h.Push(3, 5.0);  // reusable after clear
  EXPECT_EQ(h.Top(), 3u);
}

TEST(IndexedHeap, SparseIdsGrowMap) {
  IndexedHeap<double> h;
  h.Push(1000000, 1.0);
  EXPECT_TRUE(h.Contains(1000000));
  EXPECT_FALSE(h.Contains(999999));
}

TEST(IndexedHeap, RandomizedAgainstReference) {
  // Differential test against a naive priority map.
  Rng rng(123);
  IndexedHeap<double> h;
  std::vector<double> reference(200, -1);  // -1 = absent
  for (int op = 0; op < 5000; ++op) {
    uint32_t id = static_cast<uint32_t>(rng.Below(200));
    switch (rng.Below(4)) {
      case 0:  // push/update
        h.Update(id, rng.NextDouble());
        reference[id] = h.PriorityOf(id);
        break;
      case 1:  // erase
        if (reference[id] >= 0) {
          h.Erase(id);
          reference[id] = -1;
        }
        break;
      case 2: {  // pop
        uint32_t best = UINT32_MAX;
        for (uint32_t i = 0; i < 200; ++i) {
          if (reference[i] >= 0 &&
              (best == UINT32_MAX || reference[i] > reference[best])) {
            best = i;
          }
        }
        if (best != UINT32_MAX) {
          EXPECT_DOUBLE_EQ(h.TopPriority(), reference[best]);
          uint32_t popped = h.Pop();
          EXPECT_DOUBLE_EQ(reference[popped], reference[best]);
          reference[popped] = -1;
        }
        break;
      }
      default:  // membership check
        EXPECT_EQ(h.Contains(id), reference[id] >= 0);
    }
  }
}

}  // namespace
}  // namespace banks
