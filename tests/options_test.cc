#include <gtest/gtest.h>

#include "search/context_pool.h"
#include "search/output_heap.h"
#include "test_util.h"

namespace banks {
namespace {

using testing::MakeRandomGraph;
using testing::RunSearch;

AnswerTree ScoredTree(NodeId root, double score) {
  AnswerTree t;
  t.root = root;
  t.keyword_nodes = {root};
  t.keyword_distances = {0};
  t.score = score;
  return t;
}

// ------------------------------------------------ OutputHeap::ReleaseBest --

TEST(OutputHeapReleaseBest, ReleasesExactlyCount) {
  OutputHeap heap;
  for (NodeId r = 0; r < 10; ++r) heap.Insert(ScoredTree(r, 0.1 * r));
  std::vector<AnswerTree> out;
  heap.ReleaseBest(3, 100, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].root, 9u);
  EXPECT_EQ(out[2].root, 7u);
  EXPECT_EQ(heap.pending_count(), 7u);
}

TEST(OutputHeapReleaseBest, HonorsGlobalLimit) {
  OutputHeap heap;
  for (NodeId r = 0; r < 10; ++r) heap.Insert(ScoredTree(r, 0.1 * r));
  std::vector<AnswerTree> out(2);  // already two answers released
  heap.ReleaseBest(5, 4, &out);
  EXPECT_EQ(out.size(), 4u);  // limit 4 caps the batch at 2
}

TEST(OutputHeapReleaseBest, CachedBestStaysCorrect) {
  OutputHeap heap;
  heap.Insert(ScoredTree(1, 0.9));
  heap.Insert(ScoredTree(2, 0.5));
  EXPECT_DOUBLE_EQ(heap.BestPendingScore(), 0.9);
  std::vector<AnswerTree> out;
  heap.ReleaseBest(1, 10, &out);
  EXPECT_DOUBLE_EQ(heap.BestPendingScore(), 0.5);
  heap.Insert(ScoredTree(3, 0.7));
  EXPECT_DOUBLE_EQ(heap.BestPendingScore(), 0.7);
  out.clear();
  heap.Drain(10, &out);
  EXPECT_DOUBLE_EQ(heap.BestPendingScore(), -1);
}

// ----------------------------------------------- Fingerprint / equality --

TEST(OptionsFingerprint, StableForEqualOptions) {
  SearchOptions a;
  SearchOptions b;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  EXPECT_TRUE(SameResultOptions(a, b));
}

TEST(OptionsFingerprint, EveryResultAffectingFieldChangesIt) {
  const SearchOptions base;
  const uint64_t fp = OptionsFingerprint(base);
  auto differs = [&](auto mutate) {
    SearchOptions o = base;
    mutate(o);
    EXPECT_NE(OptionsFingerprint(o), fp);
    EXPECT_FALSE(SameResultOptions(o, base));
  };
  differs([](SearchOptions& o) { o.k = 11; });
  differs([](SearchOptions& o) { o.dmax = 7; });
  differs([](SearchOptions& o) { o.lambda = 0.3; });
  differs([](SearchOptions& o) { o.mu = 0.6; });
  differs([](SearchOptions& o) { o.combine = ActivationCombine::kSum; });
  differs([](SearchOptions& o) { o.bound = BoundMode::kLoose; });
  differs([](SearchOptions& o) { o.edge_filter = EdgeFilter::kForwardOnly; });
  differs([](SearchOptions& o) { o.max_nodes_explored = 1; });
  differs([](SearchOptions& o) { o.max_answers_generated = 1; });
  differs([](SearchOptions& o) { o.bound_check_interval = 65; });
  differs([](SearchOptions& o) { o.release_patience = 513; });
}

TEST(OptionsFingerprint, ShardingIsResultNeutralAndExcluded) {
  // Sharding provably never changes answers (the sharded differential
  // suite), so the fingerprint must not see it — one cache entry serves
  // a query at any parallelism.
  SearchOptions a;
  SearchOptions b;
  b.shard_count = 8;
  SearchContextPool pool;
  b.shard_pool = &pool;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  EXPECT_TRUE(SameResultOptions(a, b));
}

// ------------------------------------------------------ Option behaviour --

class OptionsSweep : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, OptionsSweep,
                         ::testing::Values(Algorithm::kBackwardMI,
                                           Algorithm::kBackwardSI,
                                           Algorithm::kBidirectional),
                         [](const auto& info) {
                           std::string n = AlgorithmName(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST_P(OptionsSweep, PatienceZeroStillTerminates) {
  Graph g = MakeRandomGraph(150, 600, 3);
  SearchOptions options;
  options.bound = BoundMode::kLoose;
  options.release_patience = 0;  // disabled: only edge-bound + drain
  options.k = 5;
  SearchResult r = RunSearch(GetParam(), g, {{0, 1}, {2, 3}}, options);
  EXPECT_EQ(r.metrics.answers_output, r.answers.size());
}

TEST_P(OptionsSweep, LooseAndTightAgreeOnBestAnswer) {
  Graph g = MakeRandomGraph(180, 700, 11);
  SearchOptions tight;
  tight.k = 1;
  SearchOptions loose = tight;
  loose.bound = BoundMode::kLoose;
  SearchResult rt = RunSearch(GetParam(), g, {{0, 4}, {1, 5}}, tight);
  SearchResult rl = RunSearch(GetParam(), g, {{0, 4}, {1, 5}}, loose);
  ASSERT_EQ(rt.answers.empty(), rl.answers.empty());
  if (!rt.answers.empty()) {
    EXPECT_NEAR(rt.answers[0].score, rl.answers[0].score, 1e-9);
  }
}

TEST_P(OptionsSweep, MaxAnswersGeneratedBudget) {
  Graph g = MakeRandomGraph(300, 1500, 17);
  SearchOptions options;
  options.max_answers_generated = 3;
  options.k = 50;
  SearchResult r = RunSearch(GetParam(), g, {{0, 1, 2}, {3, 4, 5}}, options);
  // Once the cap trips, the search stops and drains.
  if (r.metrics.answers_generated >= 3) {
    EXPECT_TRUE(r.metrics.budget_exhausted);
  }
}

TEST_P(OptionsSweep, SmallDmaxSubsetOfLargeDmax) {
  // Every answer findable at dmax=2 is also findable at dmax=8 with a
  // score at least as good.
  Graph g = MakeRandomGraph(120, 500, 23);
  SearchOptions small;
  small.dmax = 2;
  small.k = 5;
  SearchOptions large = small;
  large.dmax = 8;
  SearchResult rs = RunSearch(GetParam(), g, {{0, 2}, {1, 3}}, small);
  SearchResult rl = RunSearch(GetParam(), g, {{0, 2}, {1, 3}}, large);
  if (!rs.answers.empty()) {
    ASSERT_FALSE(rl.answers.empty());
    EXPECT_GE(rl.answers[0].score + 1e-9, rs.answers[0].score);
  }
}

TEST_P(OptionsSweep, KOneFindsGlobalBest) {
  Graph g = MakeRandomGraph(150, 600, 29);
  SearchOptions k1;
  k1.k = 1;
  SearchOptions k10;
  k10.k = 10;
  SearchResult r1 = RunSearch(GetParam(), g, {{0, 6}, {1, 7}}, k1);
  SearchResult r10 = RunSearch(GetParam(), g, {{0, 6}, {1, 7}}, k10);
  ASSERT_EQ(r1.answers.empty(), r10.answers.empty());
  if (!r1.answers.empty()) {
    EXPECT_NEAR(r1.answers[0].score, r10.answers[0].score, 1e-9);
  }
}

}  // namespace
}  // namespace banks
