#include "prestige/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "test_util.h"

namespace banks {
namespace {

TEST(Prestige, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_TRUE(ComputePrestige(g).empty());
}

TEST(Prestige, SingleNode) {
  GraphBuilder b;
  b.AddNodes(1);
  Graph g = b.Build();
  auto p = ComputePrestige(g);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);  // normalized max
}

TEST(Prestige, SymmetricGraphIsUniform) {
  // 3-cycle with unit weights: all nodes equal by symmetry.
  GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  Graph g = b.Build();
  auto p = ComputePrestige(g);
  EXPECT_NEAR(p[0], p[1], 1e-9);
  EXPECT_NEAR(p[1], p[2], 1e-9);
  EXPECT_NEAR(p[0], 1.0, 1e-9);
}

TEST(Prestige, CitedPaperOutranksCiter) {
  // Many papers cite node 0 (forward edges i→0). Node 0 should have the
  // highest prestige — the paper's "users expect recovery on DBLP to
  // rank first the most popular papers".
  GraphBuilder b;
  b.AddNodes(6);
  for (NodeId i = 1; i < 6; ++i) b.AddEdge(i, 0);
  Graph g = b.Build();
  auto p = ComputePrestige(g);
  for (NodeId i = 1; i < 6; ++i) EXPECT_GT(p[0], p[i]);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(Prestige, HeavyEdgeCarriesLessPrestige) {
  // 0→1 with weight 1 and 0→2 with weight 10: transition probability is
  // inversely proportional to weight, so node 1 outranks node 2.
  GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 10.0);
  GraphBuildOptions options;
  options.add_backward_edges = false;
  Graph g = b.Build(options);
  auto p = ComputePrestige(g);
  EXPECT_GT(p[1], p[2]);
}

TEST(Prestige, DanglingNodesHandled) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 1);
  GraphBuildOptions options;
  options.add_backward_edges = false;  // node 1 and 2 dangle
  Graph g = b.Build(options);
  auto p = ComputePrestige(g);
  for (double v : p) {
    EXPECT_GT(v, 0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Prestige, UnnormalizedSumsToOne) {
  Graph g = testing::MakeRandomGraph(50, 200, 3);
  PrestigeOptions options;
  options.normalize_max_to_one = false;
  auto p = ComputePrestige(g, options);
  double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Prestige, DeterministicAcrossRuns) {
  Graph g = testing::MakeRandomGraph(100, 500, 17);
  auto p1 = ComputePrestige(g);
  auto p2 = ComputePrestige(g);
  EXPECT_EQ(p1, p2);
}

TEST(Prestige, DampingZeroIsUniform) {
  Graph g = testing::MakeRandomGraph(20, 60, 5);
  PrestigeOptions options;
  options.damping = 0.0;
  auto p = ComputePrestige(g, options);
  for (double v : p) EXPECT_NEAR(v, 1.0, 1e-9);  // all equal, max-normalized
}

TEST(Prestige, UniformPrestigeIsAllOnes) {
  auto p = UniformPrestige(5);
  ASSERT_EQ(p.size(), 5u);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Prestige, BackwardEdgesDampenHubLeakage) {
  // Star: many leaves reference the hub. With backward edges the hub's
  // backward transitions are heavily weighted (log2(1+indeg)), carrying
  // *less* probability per leaf than a naive unweighted reverse walk.
  Graph g = testing::MakeStarGraph(20);
  auto p = ComputePrestige(g);
  // Hub collects prestige from 20 leaves; it must dominate.
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  for (NodeId leaf = 1; leaf <= 20; ++leaf) EXPECT_LT(p[leaf], 0.5);
}

}  // namespace
}  // namespace banks
