#include "test_util.h"

#include "prestige/pagerank.h"
#include "util/rng.h"

namespace banks::testing {

Fig4Graph MakeFig4Graph() {
  Fig4Graph out;
  GraphBuilder b;
  NodeType paper_t = b.InternType("paper");
  NodeType author_t = b.InternType("author");
  NodeType writes_t = b.InternType("writes");

  // 100 papers whose titles contain "database"; the last is the root of
  // the desired answer (co-authored by James and John).
  for (int i = 0; i < 100; ++i) {
    out.database_papers.push_back(b.AddNode(paper_t));
  }
  out.root_paper = out.database_papers.back();

  out.james = b.AddNode(author_t);
  out.john = b.AddNode(author_t);

  // James wrote only the root paper.
  {
    NodeId w = b.AddNode(writes_t);
    out.writes_nodes.push_back(w);
    b.AddEdge(w, out.james);
    b.AddEdge(w, out.root_paper);
  }
  // John wrote the root paper and 47 other (non-database) papers —
  // the large fan-in that hurts Backward search.
  {
    NodeId w = b.AddNode(writes_t);
    out.writes_nodes.push_back(w);
    b.AddEdge(w, out.john);
    b.AddEdge(w, out.root_paper);
  }
  for (int i = 0; i < 47; ++i) {
    NodeId p = b.AddNode(paper_t);  // non-database paper
    NodeId w = b.AddNode(writes_t);
    out.writes_nodes.push_back(w);
    b.AddEdge(w, out.john);
    b.AddEdge(w, p);
  }
  out.graph = b.Build();
  return out;
}

Graph MakePathGraph(size_t n, bool backward_edges) {
  GraphBuilder b;
  b.AddNodes(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  GraphBuildOptions options;
  options.add_backward_edges = backward_edges;
  return b.Build(options);
}

Graph MakeStarGraph(size_t leaves, bool backward_edges) {
  GraphBuilder b;
  b.AddNodes(leaves + 1);
  for (size_t i = 1; i <= leaves; ++i) {
    b.AddEdge(static_cast<NodeId>(i), 0);
  }
  GraphBuildOptions options;
  options.add_backward_edges = backward_edges;
  return b.Build(options);
}

Graph MakeRandomGraph(size_t nodes, size_t edges, uint64_t seed,
                      bool backward_edges) {
  Rng rng(seed);
  GraphBuilder b;
  b.AddNodes(nodes);
  for (size_t e = 0; e < edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.Below(nodes));
    NodeId v = static_cast<NodeId>(rng.Below(nodes));
    if (u == v) continue;
    double w = 1.0 + rng.Below(3);  // weights in {1, 2, 3}
    b.AddEdge(u, v, w);
  }
  GraphBuildOptions options;
  options.add_backward_edges = backward_edges;
  return b.Build(options);
}

SearchResult RunSearch(Algorithm algorithm, const Graph& graph,
                       const std::vector<std::vector<NodeId>>& origins,
                       const SearchOptions& options) {
  std::vector<double> prestige = UniformPrestige(graph.num_nodes());
  return CreateSearcher(algorithm, graph, prestige, options)->Search(origins);
}

std::string ValidateAnswers(const Graph& graph, const SearchResult& result) {
  for (const AnswerTree& tree : result.answers) {
    std::string error;
    if (!tree.Validate(graph, &error)) return error;
  }
  return "";
}

bool ScoresNonIncreasing(const SearchResult& result) {
  for (size_t i = 1; i < result.answers.size(); ++i) {
    if (result.answers[i].score > result.answers[i - 1].score + 1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace banks::testing
