// Serving-core integration of the paged storage layer: a quantum that
// faults on a non-resident page parks the task (kPageWait) instead of
// blocking its worker, and the BufferPool fetch thread requeues it.
// Answers must stay byte-identical to the in-RAM engine throughout.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "search/answer.h"
#include "serve/queue_sink.h"
#include "serve/scheduler.h"
#include "storage/paged_store.h"

namespace banks {
namespace {

// Per-process paths: ctest runs tests from this binary concurrently, and
// a shared fixture file would be rewritten under a reader's pages.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

std::vector<AnswerTree> Drain(QueueSink* sink) {
  std::vector<AnswerTree> out;
  AnswerTree t;
  while (sink->TryPop(&t)) out.push_back(t);
  return out;
}

void ExpectSameAnswers(const std::vector<AnswerTree>& expect,
                       const std::vector<AnswerTree>& got) {
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(SameAnswer(expect[i], got[i])) << "answer " << i;
  }
}

/// One small DBLP graph, its in-RAM engine, and a paged file; each test
/// opens the file with the pool size it wants.
struct PageWaitEnv {
  PageWaitEnv()
      : ram(Engine::FromDatabase(GenerateDblp(Config()))),
        path(TempPath("page_wait.banks")) {
    PagedStoreOptions save;
    save.page_size = 4u << 10;
    // Page every run (no resident short-run inlining): these tests are
    // about the page-wait protocol, so all adjacency must fault.
    save.inline_run_bytes = 0;
    ok = PagedStore::Save(ram.data(), ram.prestige(), path, save);
    const auto terms = ram.index().SortedTerms();
    keywords = {terms[terms.size() / 10].first, terms[terms.size() / 2].first};
  }

  static DblpConfig Config() {
    DblpConfig cfg;
    cfg.num_authors = 120;
    cfg.num_papers = 250;
    cfg.num_conferences = 10;
    cfg.seed = 11;
    return cfg;
  }

  /// Paged engine whose pool holds only a couple of pages, so nearly
  /// every expansion step faults.
  Engine OpenTiny() const {
    PagedOpenOptions open;
    open.pool_bytes = 8u << 10;
    std::optional<PagedData> pd = PagedStore::Open(path, open);
    EXPECT_TRUE(pd.has_value());
    return Engine(std::move(pd->data));
  }

  Engine ram;
  std::string path;
  bool ok = false;
  std::vector<std::string> keywords;
};

const PageWaitEnv& Env() {
  static PageWaitEnv* env = new PageWaitEnv();
  return *env;
}

TEST(PageWait, WorkerBackedPagedServingMatchesInRam) {
  ASSERT_TRUE(Env().ok);
  Engine paged = Env().OpenTiny();
  SchedulerOptions sched_options;
  sched_options.num_workers = 2;
  sched_options.quantum_steps = 3;  // many quanta → many fault points
  Scheduler scheduler(sched_options);
  SearchOptions options;
  options.k = 8;

  SearchResult expect =
      Env().ram.Query(Env().keywords, Algorithm::kBidirectional, options);

  QueueSink sink;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  Subscription sub = paged.Subscribe(Env().keywords, Algorithm::kBidirectional,
                                     &sink, options, subscribe);
  EXPECT_EQ(sub.Wait(), SubscribeStatus::kCompleted);
  ExpectSameAnswers(expect.answers, Drain(&sink));

  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_GT(stats.page_waits, 0u) << "tiny pool never parked a quantum";
  EXPECT_EQ(stats.page_waiting, 0u);  // nothing left parked at the end
  EXPECT_GT(sink.final_metrics().page_misses, 0u);
}

TEST(PageWait, ManualDrivePagedServingMatchesInRam) {
  ASSERT_TRUE(Env().ok);
  Engine paged = Env().OpenTiny();
  SchedulerOptions sched_options;
  sched_options.num_workers = 0;  // manual drive
  sched_options.quantum_steps = 3;
  Scheduler scheduler(sched_options);
  SearchOptions options;
  options.k = 8;

  SearchResult expect =
      Env().ram.Query(Env().keywords, Algorithm::kBackwardMI, options);

  QueueSink sink;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  Subscription sub = paged.Subscribe(Env().keywords, Algorithm::kBackwardMI,
                                     &sink, options, subscribe);
  bool saw_parked_depth = false;
  while (!sub.finished()) {
    bool did_work = scheduler.DriveOne();
    // A quantum that ends in a fault leaves the task parked until the
    // fetch thread's OnPageReady; Snapshot must expose that depth.
    if (scheduler.Snapshot().page_waiting > 0) saw_parked_depth = true;
    if (!did_work) {
      // Nothing runnable: the driver is NOT blocked — it just has no
      // work until the fetch thread requeues the task.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  EXPECT_EQ(sub.Wait(), SubscribeStatus::kCompleted);
  ExpectSameAnswers(expect.answers, Drain(&sink));
  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_GT(stats.page_waits, 0u);
  EXPECT_TRUE(saw_parked_depth) << "Snapshot never exposed page_waiting > 0";
}

TEST(PageWait, AllAlgorithmsMatchInRamUnderPaging) {
  ASSERT_TRUE(Env().ok);
  Engine paged = Env().OpenTiny();
  SchedulerOptions sched_options;
  sched_options.num_workers = 2;
  sched_options.quantum_steps = 5;
  Scheduler scheduler(sched_options);
  SearchOptions options;
  options.k = 6;
  for (Algorithm algorithm : {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                              Algorithm::kBidirectional}) {
    SearchResult expect = Env().ram.Query(Env().keywords, algorithm, options);
    QueueSink sink;
    SubscribeOptions subscribe;
    subscribe.scheduler = &scheduler;
    Subscription sub =
        paged.Subscribe(Env().keywords, algorithm, &sink, options, subscribe);
    ASSERT_EQ(sub.Wait(), SubscribeStatus::kCompleted);
    ExpectSameAnswers(expect.answers, Drain(&sink));
    // Deterministic work counters survive the serving + paging detour.
    SearchMetrics m = sink.final_metrics();
    EXPECT_EQ(m.nodes_explored, expect.metrics.nodes_explored);
    EXPECT_EQ(m.edges_relaxed, expect.metrics.edges_relaxed);
    EXPECT_EQ(m.answers_output, expect.metrics.answers_output);
  }
}

TEST(PageWait, ConcurrentPagedSubscriptionsAllComplete) {
  ASSERT_TRUE(Env().ok);
  Engine paged = Env().OpenTiny();
  SchedulerOptions sched_options;
  sched_options.num_workers = 4;
  sched_options.quantum_steps = 3;
  Scheduler scheduler(sched_options);
  SearchOptions options;
  options.k = 5;
  SearchResult expect =
      Env().ram.Query(Env().keywords, Algorithm::kBidirectional, options);

  constexpr size_t kSubs = 6;
  std::vector<QueueSink> sinks(kSubs);
  std::vector<Subscription> subs;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  for (size_t i = 0; i < kSubs; ++i) {
    subs.push_back(paged.Subscribe(Env().keywords, Algorithm::kBidirectional,
                                   &sinks[i], options, subscribe));
  }
  for (size_t i = 0; i < kSubs; ++i) {
    ASSERT_EQ(subs[i].Wait(), SubscribeStatus::kCompleted) << "sub " << i;
    ExpectSameAnswers(expect.answers, Drain(&sinks[i]));
  }
  // All subscriptions contended for the same two-page pool, so parking
  // must have happened across the set.
  EXPECT_GT(scheduler.Snapshot().page_waits, 0u);
}

TEST(PageWait, DeadlineExpiryStillFiresOnPagedTasks) {
  ASSERT_TRUE(Env().ok);
  Engine paged = Env().OpenTiny();
  SchedulerOptions sched_options;
  sched_options.num_workers = 2;
  sched_options.quantum_steps = 1;
  Scheduler scheduler(sched_options);
  SearchOptions options;
  options.k = 10;
  QueueSink sink;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  subscribe.deadline_seconds = 1e-6;  // unmeetable under page faulting
  Subscription sub = paged.Subscribe(Env().keywords, Algorithm::kBidirectional,
                                     &sink, options, subscribe);
  SubscribeStatus status = sub.Wait();
  // The wheel-armed deadline must terminate the task even while it
  // alternates between executing and page-wait parking.
  EXPECT_EQ(status, SubscribeStatus::kDeadlineExpired);
  EXPECT_EQ(scheduler.Snapshot().deadline_expired, 1u);
}

TEST(PageWait, CancelWhileParkedTerminatesCleanly) {
  ASSERT_TRUE(Env().ok);
  Engine paged = Env().OpenTiny();
  SchedulerOptions sched_options;
  sched_options.num_workers = 0;  // manual: we control every quantum
  sched_options.quantum_steps = 1;
  Scheduler scheduler(sched_options);
  SearchOptions options;
  options.k = 10;
  QueueSink sink;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  Subscription sub = paged.Subscribe(Env().keywords, Algorithm::kBidirectional,
                                     &sink, options, subscribe);
  // Run a few quanta so the task acquires its context and likely parks.
  for (int i = 0; i < 4; ++i) scheduler.DriveOne();
  sub.Cancel();
  while (!sub.finished()) {
    if (!scheduler.DriveOne()) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  SubscribeStatus status = sub.Wait();
  EXPECT_TRUE(status == SubscribeStatus::kCancelled ||
              status == SubscribeStatus::kCompleted)
      << SubscribeStatusName(status);
  EXPECT_EQ(scheduler.Snapshot().page_waiting, 0u);
}

}  // namespace
}  // namespace banks
