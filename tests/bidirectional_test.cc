#include "search/bidirectional.h"

#include <gtest/gtest.h>

#include "search/backward_mi.h"
#include "search/backward_si.h"
#include "test_util.h"

namespace banks {
namespace {

using testing::MakeFig4Graph;
using testing::RunSearch;

/// §4.4: on the Figure-4 graph, "Backward expanding search would explore
/// at least 151 nodes ... Bidirectional search would explore only 4
/// nodes (and touch about 150)". Our generator reproduces the shape, not
/// the exact ids, so assert the *relationship*, with generous slack.
TEST(BidirectionalFig4, ExploresFarFewerNodesThanBackward) {
  testing::Fig4Graph fig = MakeFig4Graph();
  std::vector<std::vector<NodeId>> origins = {
      fig.database_papers, {fig.james}, {fig.john}};
  SearchOptions options;
  options.k = 1;

  SearchResult bidir =
      RunSearch(Algorithm::kBidirectional, fig.graph, origins, options);
  SearchResult mi =
      RunSearch(Algorithm::kBackwardMI, fig.graph, origins, options);
  SearchResult si =
      RunSearch(Algorithm::kBackwardSI, fig.graph, origins, options);

  ASSERT_FALSE(bidir.answers.empty());
  ASSERT_FALSE(mi.answers.empty());
  ASSERT_FALSE(si.answers.empty());
  EXPECT_EQ(bidir.answers[0].root, fig.root_paper);
  EXPECT_EQ(mi.answers[0].root, fig.root_paper);

  // §5.2 measures exploration at the point the relevant answer is
  // *generated* (output can lag, DQ7). MI-Backward creates an iterator
  // per keyword node (102 of them); Bidirectional's activation
  // prioritizes the singleton keywords.
  EXPECT_LT(bidir.answers[0].explored_at_generation,
            mi.answers[0].explored_at_generation / 4)
      << "bidir=" << bidir.answers[0].explored_at_generation
      << " mi=" << mi.answers[0].explored_at_generation;
  EXPECT_LE(bidir.answers[0].explored_at_generation,
            si.answers[0].explored_at_generation)
      << "bidir=" << bidir.answers[0].explored_at_generation
      << " si=" << si.answers[0].explored_at_generation;
}

TEST(BidirectionalFig4, LargeOriginKeywordsGetLowSeedActivation) {
  // With 100 "database" papers vs singleton authors, the authors must be
  // expanded first: after one answer, the number of database papers
  // explored should be tiny.
  testing::Fig4Graph fig = MakeFig4Graph();
  SearchOptions options;
  options.k = 1;
  SearchResult r = RunSearch(
      Algorithm::kBidirectional, fig.graph,
      {fig.database_papers, {fig.james}, {fig.john}}, options);
  ASSERT_FALSE(r.answers.empty());
  // The paper reports ~4 explored (at generation) vs 151 for backward;
  // allow an order of magnitude of slack but demand far fewer than the
  // 102 keyword nodes.
  EXPECT_LT(r.answers[0].explored_at_generation, 40u);
}

TEST(Bidirectional, ForwardSearchFindsKeywordBehindHighFanIn) {
  // Root r has edges to hub h and to keyword node k2. Hub h is
  // referenced by many spam nodes. Keyword k1 = {r is reachable
  // backward}, keyword k2 behind the hub. Forward expansion from the
  // root finds k2 without enumerating the hub's fan-in.
  GraphBuilder b;
  NodeId root = b.AddNode();
  NodeId hub = b.AddNode();
  NodeId k2 = b.AddNode();
  b.AddEdge(root, hub);
  b.AddEdge(hub, k2);
  std::vector<NodeId> spam;
  for (int i = 0; i < 50; ++i) {
    NodeId s = b.AddNode();
    spam.push_back(s);
    b.AddEdge(s, hub);
  }
  NodeId k1 = b.AddNode();
  b.AddEdge(root, k1);
  Graph g = b.Build();

  SearchOptions options;
  options.k = 1;
  SearchResult r =
      RunSearch(Algorithm::kBidirectional, g, {{k1}, {k2}}, options);
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(r.answers[0].root, root);
  // Never needed to expand the 50 spam nodes before finding the answer:
  // generation-point exploration stays well below the graph size.
  EXPECT_LT(r.answers[0].explored_at_generation, 30u);
}

TEST(Bidirectional, ActivationSumModeStillFindsAnswers) {
  testing::Fig4Graph fig = MakeFig4Graph();
  SearchOptions options;
  options.combine = ActivationCombine::kSum;
  SearchResult r = RunSearch(
      Algorithm::kBidirectional, fig.graph,
      {fig.database_papers, {fig.james}, {fig.john}}, options);
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(r.answers[0].root, fig.root_paper);
}

TEST(Bidirectional, LooseBoundOutputsSameAnswerSet) {
  Graph g = testing::MakeRandomGraph(200, 800, 31);
  std::vector<std::vector<NodeId>> origins = {{0, 10, 20}, {1, 11, 21}};
  SearchOptions tight;
  tight.k = 5;
  SearchOptions loose = tight;
  loose.bound = BoundMode::kLoose;
  SearchResult rt = RunSearch(Algorithm::kBidirectional, g, origins, tight);
  SearchResult rl = RunSearch(Algorithm::kBidirectional, g, origins, loose);
  // Same top answer regardless of release policy.
  ASSERT_FALSE(rt.answers.empty());
  ASSERT_FALSE(rl.answers.empty());
  EXPECT_EQ(rt.answers[0].Signature(), rl.answers[0].Signature());
}

TEST(Bidirectional, ImmediateModeReleasesInGenerationOrder) {
  Graph g = testing::MakeRandomGraph(200, 800, 31);
  SearchOptions options;
  options.bound = BoundMode::kImmediate;
  options.k = 5;
  SearchResult r =
      RunSearch(Algorithm::kBidirectional, g, {{0, 10, 20}, {1, 11, 21}},
                options);
  // Answers exist and metrics line up; order may not be by score.
  EXPECT_EQ(r.metrics.answers_output, r.answers.size());
}

TEST(Bidirectional, EdgeFilterForwardOnly) {
  // a→b and c→b (two papers citing one paper). Connecting a and c needs
  // a backward tree edge (b→c or b→a); with kForwardOnly there is no
  // answer. (Note a co-*citation* 0→1, 0→2 would NOT need backward
  // edges: its tree uses only the two forward edges.)
  GraphBuilder b;
  NodeId a = b.AddNode();
  NodeId hub = b.AddNode();
  NodeId c = b.AddNode();
  b.AddEdge(a, hub);
  b.AddEdge(c, hub);
  Graph g = b.Build();
  SearchOptions options;
  options.edge_filter = EdgeFilter::kForwardOnly;
  SearchResult r =
      RunSearch(Algorithm::kBidirectional, g, {{a}, {c}}, options);
  EXPECT_TRUE(r.answers.empty());
  options.edge_filter = EdgeFilter::kAll;
  r = RunSearch(Algorithm::kBidirectional, g, {{a}, {c}}, options);
  EXPECT_FALSE(r.answers.empty());
}

TEST(Bidirectional, PrestigeBiasesRankingWhenScoresTie) {
  // Two symmetric answers; node prestige must break the tie (§2.3).
  GraphBuilder b;
  NodeId k1 = b.AddNode();                 // keyword 1
  NodeId mid_low = b.AddNode();            // root of answer A
  NodeId mid_high = b.AddNode();           // root of answer B
  NodeId k2a = b.AddNode();                // keyword 2 copy A
  NodeId k2b = b.AddNode();                // keyword 2 copy B
  b.AddEdge(mid_low, k1);
  b.AddEdge(mid_low, k2a);
  b.AddEdge(mid_high, k1);
  b.AddEdge(mid_high, k2b);
  Graph g = b.Build();
  std::vector<double> prestige = {1.0, 0.2, 0.9, 0.5, 0.5};
  SearchOptions options;
  options.k = 2;
  SearchResult r =
      CreateSearcher(Algorithm::kBidirectional, g, prestige, options)
          ->Search({{k1}, {k2a, k2b}});
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_EQ(r.answers[0].root, mid_high) << "higher-prestige root first";
}

TEST(Bidirectional, PropagationMaintainsDistanceInvariant) {
  // After search, every emitted tree's keyword distances must be
  // realizable path lengths (Validate re-checks edges; here we check
  // distances are consistent with edge weights).
  Graph g = testing::MakeRandomGraph(150, 600, 99);
  SearchResult r = RunSearch(Algorithm::kBidirectional, g,
                             {{0, 5, 9}, {2, 7}, {3, 8}});
  for (const AnswerTree& t : r.answers) {
    double sum = 0;
    for (const AnswerEdge& e : t.edges) sum += e.weight;
    // Eraw counts shared edges once per keyword path, so it is at least
    // the max single path and at most keywords × total edge weight.
    EXPECT_GE(t.edge_score_raw + 1e-6, 0.0);
    EXPECT_LE(t.edge_score_raw,
              sum * static_cast<double>(t.keyword_nodes.size()) + 1e-6);
  }
}

TEST(Bidirectional, TouchedAtLeastExplored) {
  Graph g = testing::MakeRandomGraph(300, 1500, 55);
  SearchResult r =
      RunSearch(Algorithm::kBidirectional, g, {{0, 1}, {2, 3}});
  EXPECT_GE(r.metrics.nodes_touched, 1u);
  // Every explored node was touched first (inserted into a queue).
  EXPECT_LE(r.metrics.nodes_explored, r.metrics.nodes_touched);
}

TEST(Bidirectional, DmaxBoundsDepthNotAnswersWithinRange) {
  Graph g = testing::MakePathGraph(8);
  SearchOptions options;
  options.dmax = 8;
  SearchResult r =
      RunSearch(Algorithm::kBidirectional, g, {{0}, {7}}, options);
  EXPECT_FALSE(r.answers.empty());
}

}  // namespace
}  // namespace banks
