#include "search/searcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace banks {
namespace {

using testing::MakeFig4Graph;
using testing::MakePathGraph;
using testing::MakeStarGraph;
using testing::RunSearch;
using testing::ValidateAnswers;

/// Cross-algorithm behaviours: every test below runs for all three
/// searchers through this parameterized fixture.
class AllAlgorithms : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, AllAlgorithms,
                         ::testing::Values(Algorithm::kBackwardMI,
                                           Algorithm::kBackwardSI,
                                           Algorithm::kBidirectional),
                         [](const auto& info) {
                           std::string name = AlgorithmName(info.param);
                           name.erase(std::remove(name.begin(), name.end(), '-'),
                                      name.end());
                           return name;
                         });

TEST_P(AllAlgorithms, EmptyQueryYieldsNothing) {
  Graph g = MakePathGraph(3);
  SearchResult r = RunSearch(GetParam(), g, {});
  EXPECT_TRUE(r.answers.empty());
}

TEST_P(AllAlgorithms, EmptyOriginSetYieldsNothing) {
  Graph g = MakePathGraph(3);
  SearchResult r = RunSearch(GetParam(), g, {{0}, {}});
  EXPECT_TRUE(r.answers.empty());
  EXPECT_EQ(r.metrics.answers_generated, 0u);
}

TEST_P(AllAlgorithms, SingleKeywordReturnsMatchingNodes) {
  Graph g = MakePathGraph(5);
  SearchResult r = RunSearch(GetParam(), g, {{1, 3}});
  ASSERT_EQ(r.answers.size(), 2u);
  for (const AnswerTree& t : r.answers) {
    EXPECT_TRUE(t.edges.empty());
    EXPECT_EQ(t.root, t.keyword_nodes[0]);
    EXPECT_TRUE(t.root == 1 || t.root == 3);
  }
  EXPECT_EQ(ValidateAnswers(g, r), "");
}

TEST_P(AllAlgorithms, TwoKeywordsOnPathFindConnection) {
  // 0→1→2→3→4 with unit forward weights; keywords at 0 and 4.
  Graph g = MakePathGraph(5);
  SearchResult r = RunSearch(GetParam(), g, {{0}, {4}});
  ASSERT_FALSE(r.answers.empty());
  const AnswerTree& best = r.answers[0];
  EXPECT_EQ(ValidateAnswers(g, r), "");
  // Both keyword nodes present.
  EXPECT_EQ(best.keyword_nodes[0], 0u);
  EXPECT_EQ(best.keyword_nodes[1], 4u);
  // Every root on the path yields Eraw = 4 (forward and derived backward
  // edges all have weight 1 here), so assert the score, not the root.
  EXPECT_NEAR(best.edge_score_raw, 4.0, 1e-6);
}

TEST_P(AllAlgorithms, KeywordsAtSameNode) {
  Graph g = MakePathGraph(3);
  SearchResult r = RunSearch(GetParam(), g, {{1}, {1}});
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(r.answers[0].root, 1u);
  EXPECT_NEAR(r.answers[0].edge_score_raw, 0.0, 1e-9);
}

TEST_P(AllAlgorithms, CoCitationThroughBackwardEdges) {
  // u cites v and w: forward edges u→v, u→w. An answer connecting v and
  // w must traverse backward edges via u (the paper's co-citation
  // motivation for backward edges).
  GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  Graph g = b.Build();
  SearchResult r = RunSearch(GetParam(), g, {{1}, {2}});
  ASSERT_FALSE(r.answers.empty());
  const AnswerTree& best = r.answers[0];
  EXPECT_EQ(best.root, 0u);
  EXPECT_EQ(best.edges.size(), 2u);
  EXPECT_EQ(ValidateAnswers(g, r), "");
}

TEST_P(AllAlgorithms, MinimalRootRuleDiscardsChains) {
  // Path 0→1→2; keywords {1} and {2}. Tree rooted at 0 with single
  // child 1 would be non-minimal (all keywords below); it must not
  // appear. Valid roots: 1 (forward to 2).
  Graph g = MakePathGraph(3);
  SearchResult r = RunSearch(GetParam(), g, {{1}, {2}});
  ASSERT_FALSE(r.answers.empty());
  for (const AnswerTree& t : r.answers) {
    EXPECT_TRUE(t.IsMinimalRooted());
    EXPECT_NE(t.root, 0u) << "non-minimal chain root emitted";
  }
  // Roots 1 (forward to 2) and 2 (keyword at root, backward to 1) tie
  // with Eraw = 1; root 0 is non-minimal and must be absent.
  EXPECT_NEAR(r.answers[0].edge_score_raw, 1.0, 1e-6);
}

TEST_P(AllAlgorithms, RespectsK) {
  Graph g = MakeStarGraph(20);
  std::vector<NodeId> leaves;
  for (NodeId v = 1; v <= 20; ++v) leaves.push_back(v);
  SearchOptions options;
  options.k = 3;
  SearchResult r = RunSearch(GetParam(), g, {leaves, {0}}, options);
  EXPECT_LE(r.answers.size(), 3u);
  EXPECT_EQ(r.metrics.answers_output, r.answers.size());
}

TEST_P(AllAlgorithms, RespectsDmax) {
  // Keywords 10 hops apart with dmax = 3: unreachable.
  Graph g = MakePathGraph(12);
  SearchOptions options;
  options.dmax = 3;
  SearchResult r = RunSearch(GetParam(), g, {{0}, {11}}, options);
  EXPECT_TRUE(r.answers.empty());
}

TEST_P(AllAlgorithms, RespectsNodeBudget) {
  Graph g = testing::MakeRandomGraph(500, 2000, 11);
  SearchOptions options;
  options.max_nodes_explored = 10;
  SearchResult r = RunSearch(GetParam(), g, {{0}, {1}, {2}}, options);
  // Budget is a stop condition, not a hard cap mid-expansion; allow
  // slack of one expansion round.
  EXPECT_LE(r.metrics.nodes_explored, 12u);
}

TEST_P(AllAlgorithms, DisconnectedKeywordsYieldNothing) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  SearchResult r = RunSearch(GetParam(), g, {{0}, {3}});
  EXPECT_TRUE(r.answers.empty());
}

TEST_P(AllAlgorithms, ScoresSortedInOutputOrder) {
  Graph g = testing::MakeRandomGraph(200, 800, 5);
  SearchOptions options;
  options.k = 10;
  SearchResult r = RunSearch(GetParam(), g, {{0, 10, 20}, {1, 11, 21}},
                             options);
  EXPECT_EQ(ValidateAnswers(g, r), "");
  EXPECT_TRUE(testing::ScoresNonIncreasing(r))
      << "answers released out of relevance order";
}

TEST_P(AllAlgorithms, AnswersAreDeduplicated) {
  Graph g = testing::MakeRandomGraph(100, 400, 9);
  SearchResult r = RunSearch(GetParam(), g, {{0, 5}, {1, 6}});
  std::vector<uint64_t> sigs;
  for (const AnswerTree& t : r.answers) sigs.push_back(t.Signature());
  std::sort(sigs.begin(), sigs.end());
  EXPECT_EQ(std::adjacent_find(sigs.begin(), sigs.end()), sigs.end())
      << "duplicate (rotated) answer emitted";
}

TEST_P(AllAlgorithms, MetricsAreConsistent) {
  Graph g = testing::MakeRandomGraph(300, 1200, 13);
  SearchResult r = RunSearch(GetParam(), g, {{0, 1, 2}, {3, 4}});
  EXPECT_EQ(r.metrics.answers_output, r.answers.size());
  EXPECT_EQ(r.metrics.output_times.size(), r.answers.size());
  EXPECT_EQ(r.metrics.generated_times.size(), r.answers.size());
  EXPECT_GE(r.metrics.nodes_touched, 1u);
  for (size_t i = 0; i < r.answers.size(); ++i) {
    EXPECT_LE(r.metrics.generated_times[i],
              r.metrics.output_times[i] + 1e-9);
  }
  for (size_t i = 1; i < r.metrics.output_times.size(); ++i) {
    EXPECT_LE(r.metrics.output_times[i - 1],
              r.metrics.output_times[i] + 1e-9);
  }
}

TEST_P(AllAlgorithms, Fig4QueryFindsRootPaper) {
  testing::Fig4Graph fig = MakeFig4Graph();
  SearchResult r = RunSearch(
      GetParam(), fig.graph,
      {fig.database_papers, {fig.james}, {fig.john}});
  ASSERT_FALSE(r.answers.empty()) << "Figure 4 answer not found";
  // The best answer must be the tree rooted at the co-authored paper.
  const AnswerTree& best = r.answers[0];
  EXPECT_EQ(best.root, fig.root_paper);
  EXPECT_EQ(ValidateAnswers(fig.graph, r), "");
}

TEST(AlgorithmName, AllNamesDistinct) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kBackwardMI), "MI-Backward");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBackwardSI), "SI-Backward");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBidirectional), "Bidirectional");
}

}  // namespace
}  // namespace banks
