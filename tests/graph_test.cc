#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "test_util.h"

namespace banks {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MemoryBytes(), 2 * sizeof(size_t));  // two offset sentinels
}

TEST(GraphBuilder, SingleEdgeCreatesBackwardEdge) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1, 1.0);
  Graph g = b.Build();
  ASSERT_EQ(g.num_nodes(), 2u);
  // Forward 0→1 plus derived backward 1→0.
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutEdges(0)[0].other, 1u);
  EXPECT_EQ(g.OutEdges(0)[0].dir, EdgeDir::kForward);
  ASSERT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutEdges(1)[0].other, 0u);
  EXPECT_EQ(g.OutEdges(1)[0].dir, EdgeDir::kBackward);
}

TEST(GraphBuilder, BackwardEdgeWeightUsesLogIndegree) {
  // Three nodes point at a hub: backward edges from the hub should carry
  // weight w * log2(1 + 3) = 2.
  GraphBuilder b;
  b.AddNodes(4);
  b.AddEdge(1, 0, 1.0);
  b.AddEdge(2, 0, 1.0);
  b.AddEdge(3, 0, 1.0);
  Graph g = b.Build();
  EXPECT_EQ(g.ForwardInDegree(0), 3u);
  for (const Edge& e : g.OutEdges(0)) {
    EXPECT_EQ(e.dir, EdgeDir::kBackward);
    EXPECT_NEAR(e.weight, std::log2(4.0), 1e-6);
  }
}

TEST(GraphBuilder, BackwardEdgeScalesWithForwardWeight) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1, 2.5);
  Graph g = b.Build();
  // indegree(1) == 1 ⇒ log2(2) == 1 ⇒ backward weight == forward weight.
  EXPECT_NEAR(g.EdgeWeight(1, 0), 2.5, 1e-6);
}

TEST(GraphBuilder, DisableBackwardEdges) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1);
  GraphBuildOptions options;
  options.add_backward_edges = false;
  Graph g = b.Build(options);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(GraphBuilder, MinBackwardWeightFloor) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1, 0.25);
  GraphBuildOptions options;
  options.min_backward_weight = 2.0;
  Graph g = b.Build(options);
  // 0.25 * log2(2) = 0.25 < floor ⇒ clamped to 2.
  EXPECT_NEAR(g.EdgeWeight(1, 0), 2.0, 1e-6);
}

TEST(Graph, InEdgesMirrorOutEdges) {
  Graph g = testing::MakeRandomGraph(50, 200, /*seed=*/7);
  size_t out_total = 0, in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
    for (const Edge& e : g.OutEdges(v)) {
      bool found = false;
      for (const Edge& in : g.InEdges(e.other)) {
        if (in.other == v && in.weight == e.weight && in.dir == e.dir) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "edge " << v << "->" << e.other
                         << " missing from in-adjacency";
    }
  }
  EXPECT_EQ(out_total, in_total);
  EXPECT_EQ(out_total, g.num_edges());
}

TEST(Graph, InverseWeightSums) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 2, 2.0);
  GraphBuildOptions options;
  options.add_backward_edges = false;
  Graph g = b.Build(options);
  EXPECT_NEAR(g.InInverseWeightSum(2), 1.0 + 0.5, 1e-9);
  EXPECT_NEAR(g.OutInverseWeightSum(0), 1.0, 1e-9);
  EXPECT_NEAR(g.OutInverseWeightSum(2), 0.0, 1e-9);
}

TEST(Graph, NodeTypes) {
  GraphBuilder b;
  NodeType author = b.InternType("author");
  NodeType paper = b.InternType("paper");
  EXPECT_NE(author, paper);
  EXPECT_EQ(b.InternType("author"), author);  // idempotent
  NodeId a = b.AddNode(author);
  NodeId p = b.AddNode(paper);
  b.AddEdge(p, a);
  Graph g = b.Build();
  EXPECT_EQ(g.Type(a), author);
  EXPECT_EQ(g.Type(p), paper);
  ASSERT_EQ(g.type_names().size(), 2u);
  EXPECT_EQ(g.type_names()[author], "author");
}

TEST(Graph, UntypedGraphReportsUntyped) {
  Graph g = testing::MakePathGraph(3);
  EXPECT_EQ(g.Type(0), kUntypedNode);
}

TEST(Graph, EdgeWeightReturnsMinOverMultiEdges) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1, 3.0);
  b.AddEdge(0, 1, 1.5);
  GraphBuildOptions options;
  options.add_backward_edges = false;
  Graph g = b.Build(options);
  EXPECT_NEAR(g.EdgeWeight(0, 1), 1.5, 1e-6);
  EXPECT_LT(g.EdgeWeight(1, 0), 0);  // absent
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(Graph, MemoryBytesMatchesCompactClaim) {
  // §5.1 claims ~16·V + 8·E bytes for the graph skeleton. Our Edge is a
  // little wider (weight + provenance), but storage must stay linear:
  // allow 3× the paper's constant.
  Graph g = testing::MakeRandomGraph(1000, 5000, 3);
  size_t v = g.num_nodes(), e = g.num_edges();
  EXPECT_LE(g.MemoryBytes(), 3 * (16 * v + 8 * e) + 4096);
}

TEST(Graph, BuilderResetAfterBuild) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1);
  Graph g1 = b.Build();
  EXPECT_EQ(b.num_nodes(), 0u);
  EXPECT_EQ(b.num_forward_edges(), 0u);
  b.AddNodes(3);
  Graph g2 = b.Build();
  EXPECT_EQ(g2.num_nodes(), 3u);
  EXPECT_EQ(g2.num_edges(), 0u);
}

TEST(Graph, MinEdgeWeightPrecomputed) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 3.0);
  b.AddEdge(2, 3, 3.0);
  Graph g = b.Build();
  // The combined graph includes derived backward edges; backward weight
  // w * log2(1 + indegree) (floored at min_backward_weight) never drops
  // below its forward edge's weight, so the minimum is the forward 0.5.
  EXPECT_DOUBLE_EQ(g.MinEdgeWeight(), 0.5);

  // Backward edges participate in the scan: a hub with fan-in 3 only
  // has backward out-edges (weight 2 * log2(4) = 4) and the combined
  // minimum stays the forward weight 2.
  GraphBuilder hub;
  hub.AddNodes(4);
  hub.AddEdge(1, 0, 2.0);
  hub.AddEdge(2, 0, 2.0);
  hub.AddEdge(3, 0, 2.0);
  Graph h = hub.Build();
  EXPECT_DOUBLE_EQ(h.MinEdgeWeight(), 2.0);
}

TEST(Graph, MinEdgeWeightEdgelessDefaultsToOne) {
  GraphBuilder b;
  b.AddNodes(3);
  Graph g = b.Build();
  EXPECT_DOUBLE_EQ(g.MinEdgeWeight(), 1.0);
}

TEST(Graph, Fig4GraphShape) {
  testing::Fig4Graph fig = testing::MakeFig4Graph();
  // 100 database papers + 2 authors + 49 writes + 47 other papers.
  EXPECT_EQ(fig.graph.num_nodes(), 100u + 2 + 49 + 47);
  // John has 48 writes tuples pointing at him.
  EXPECT_EQ(fig.graph.ForwardInDegree(fig.john), 48u);
  EXPECT_EQ(fig.graph.ForwardInDegree(fig.james), 1u);
}

}  // namespace
}  // namespace banks
