#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"

namespace banks {
namespace {

/// Counter-level metric equality. Wall-clock fields (elapsed_seconds and
/// the per-answer time vectors) legitimately differ between runs and are
/// not compared.
void ExpectSameCounters(const SearchMetrics& a, const SearchMetrics& b) {
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.edges_relaxed, b.edges_relaxed);
  EXPECT_EQ(a.propagation_steps, b.propagation_steps);
  EXPECT_EQ(a.answers_generated, b.answers_generated);
  EXPECT_EQ(a.answers_output, b.answers_output);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

void ExpectSameResult(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_TRUE(SameAnswer(a.answers[i], b.answers[i])) << "answer " << i;
  }
  ExpectSameCounters(a.metrics, b.metrics);
}

class QueryBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpConfig config;
    config.num_authors = 200;
    config.num_papers = 400;
    config.num_conferences = 15;
    db_ = new Database(GenerateDblp(config));
    engine_ = new Engine(Engine::FromDatabase(*db_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }

  /// Batch of keyword queries built from author surnames: several
  /// distinct 2-keyword sets, each duplicated once (interleaved), so the
  /// batch exercises the origin cache on a realistic stream.
  static std::vector<BatchQuerySpec> MakeSpecs() {
    const Table& author = *db_->FindTable("author");
    // Distinct surnames only, so every spec pair is a distinct keyword
    // set and the duplicate count below is exact.
    std::vector<std::string> surnames;
    for (RowId r = 0;
         r < static_cast<RowId>(author.num_rows()) && surnames.size() < 12;
         ++r) {
      std::string s =
          engine_->index().tokenizer().Tokenize(author.RowText(r)).back();
      if (std::find(surnames.begin(), surnames.end(), s) == surnames.end()) {
        surnames.push_back(std::move(s));
      }
    }
    std::vector<BatchQuerySpec> specs;
    for (size_t i = 0; i + 1 < surnames.size(); i += 2) {
      BatchQuerySpec spec;
      spec.keywords = {surnames[i], surnames[i + 1]};
      specs.push_back(spec);
      specs.push_back(spec);  // duplicate keyword set
    }
    return specs;
  }

  static Database* db_;
  static Engine* engine_;
};

Database* QueryBatchTest::db_ = nullptr;
Engine* QueryBatchTest::engine_ = nullptr;

TEST_F(QueryBatchTest, MatchesSequentialForAllAlgorithmsAndThreadCounts) {
  std::vector<BatchQuerySpec> specs = MakeSpecs();
  ASSERT_FALSE(specs.empty());
  SearchOptions options;
  options.k = 5;
  for (Algorithm algorithm :
       {Algorithm::kBidirectional, Algorithm::kBackwardSI,
        Algorithm::kBackwardMI}) {
    // Sequential reference: independent Query calls (fresh contexts).
    std::vector<SearchResult> reference;
    reference.reserve(specs.size());
    for (const BatchQuerySpec& s : specs) {
      reference.push_back(engine_->Query(s.keywords, algorithm, options));
    }
    for (size_t threads : {size_t{1}, size_t{4}}) {
      BatchOptions bopt;
      bopt.num_threads = threads;
      BatchResult batch =
          engine_->QueryBatch(specs, algorithm, options, bopt);
      ASSERT_EQ(batch.results.size(), specs.size())
          << AlgorithmName(algorithm) << " threads=" << threads;
      for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(std::string(AlgorithmName(algorithm)) + " threads=" +
                     std::to_string(threads) + " query=" + std::to_string(i));
        ExpectSameResult(batch.results[i], reference[i]);
      }
      // Half the specs are duplicates and must have hit the cache.
      EXPECT_EQ(batch.origin_cache_hits, specs.size() / 2);
      // Aggregated counters = sum over the per-query metrics.
      SearchMetrics sum;
      for (const SearchResult& r : reference) {
        sum.nodes_explored += r.metrics.nodes_explored;
        sum.nodes_touched += r.metrics.nodes_touched;
        sum.edges_relaxed += r.metrics.edges_relaxed;
        sum.propagation_steps += r.metrics.propagation_steps;
        sum.answers_generated += r.metrics.answers_generated;
        sum.answers_output += r.metrics.answers_output;
        sum.budget_exhausted |= r.metrics.budget_exhausted;
      }
      ExpectSameCounters(batch.total, sum);
      EXPECT_EQ(batch.answers_deduplicated, 0u);  // dedup off by default
    }
  }
}

TEST_F(QueryBatchTest, PreResolvedOriginsSkipKeywordResolution) {
  std::vector<BatchQuerySpec> keyword_specs = MakeSpecs();
  SearchOptions options;
  options.k = 3;
  // The same batch with origins resolved up front must produce the same
  // results; keywords are ignored when origins are present.
  std::vector<BatchQuerySpec> resolved_specs;
  for (const BatchQuerySpec& s : keyword_specs) {
    BatchQuerySpec spec;
    spec.origins = engine_->Resolve(s.keywords);
    spec.keywords = {"ignored", "keywords"};
    resolved_specs.push_back(std::move(spec));
  }
  BatchResult from_keywords =
      engine_->QueryBatch(keyword_specs, Algorithm::kBackwardSI, options);
  BatchResult from_origins =
      engine_->QueryBatch(resolved_specs, Algorithm::kBackwardSI, options);
  ASSERT_EQ(from_keywords.results.size(), from_origins.results.size());
  for (size_t i = 0; i < from_keywords.results.size(); ++i) {
    ExpectSameResult(from_keywords.results[i], from_origins.results[i]);
  }
  // Pre-resolved specs never consult the cache.
  EXPECT_EQ(from_origins.origin_cache_hits, 0u);
}

TEST_F(QueryBatchTest, DedupDropsCrossQueryDuplicateAnswers) {
  std::vector<BatchQuerySpec> specs = MakeSpecs();
  SearchOptions options;
  options.k = 5;
  BatchOptions bopt;
  bopt.dedup_answers = true;
  BatchResult batch =
      engine_->QueryBatch(specs, Algorithm::kBackwardSI, options, bopt);

  // Simulate the documented dedup contract on sequential results: an
  // answer is dropped iff its Signature appeared in an earlier query of
  // the batch (a query's own kept answers join the seen set afterwards).
  std::set<uint64_t> seen;
  size_t expected_removed = 0;
  size_t expected_kept_total = 0;
  ASSERT_EQ(batch.results.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SearchResult solo =
        engine_->Query(specs[i].keywords, Algorithm::kBackwardSI, options);
    std::vector<const AnswerTree*> expected;
    for (const AnswerTree& tree : solo.answers) {
      if (seen.count(tree.Signature()) > 0) {
        ++expected_removed;
      } else {
        expected.push_back(&tree);
      }
    }
    for (const AnswerTree* tree : expected) seen.insert(tree->Signature());
    expected_kept_total += expected.size();
    ASSERT_EQ(batch.results[i].answers.size(), expected.size())
        << "query " << i;
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_TRUE(SameAnswer(batch.results[i].answers[j], *expected[j]))
          << "query " << i << " answer " << j;
    }
  }
  EXPECT_EQ(batch.answers_deduplicated, expected_removed);
  // Specs are pairwise-duplicated, so when queries answer at all, the
  // duplicate copies' answers must have been shed.
  if (expected_kept_total > 0) {
    EXPECT_GT(expected_removed, 0u);
  }
}

TEST_F(QueryBatchTest, EmptyBatchAndUnmatchedKeywords) {
  BatchResult empty = engine_->QueryBatch({}, Algorithm::kBidirectional);
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.total.nodes_explored, 0u);

  // A keyword matching nothing yields an empty result (AND semantics),
  // batched exactly like Query does.
  std::vector<BatchQuerySpec> specs(2);
  specs[0].keywords = {"qqqqzzzz", "author"};
  specs[1].keywords = {"author"};
  BatchOptions bopt;
  bopt.num_threads = 4;  // more threads than queries must be fine
  BatchResult batch =
      engine_->QueryBatch(specs, Algorithm::kBackwardMI, {}, bopt);
  EXPECT_TRUE(batch.results[0].answers.empty());
  EXPECT_FALSE(batch.results[1].answers.empty());
}

TEST_F(QueryBatchTest, SharedPoolWarmAcrossBatches) {
  std::vector<BatchQuerySpec> specs = MakeSpecs();
  SearchOptions options;
  options.k = 5;
  SearchContextPool pool;
  BatchOptions bopt;
  bopt.num_threads = 2;
  bopt.pool = &pool;
  BatchResult first =
      engine_->QueryBatch(specs, Algorithm::kBidirectional, options, bopt);
  size_t contexts_after_first = pool.size();
  EXPECT_GE(contexts_after_first, 1u);
  EXPECT_LE(contexts_after_first, 2u);
  EXPECT_EQ(pool.available(), pool.size());  // all leases returned
  BatchResult second =
      engine_->QueryBatch(specs, Algorithm::kBidirectional, options, bopt);
  // Warm reuse: the second batch created no new contexts and returned
  // identical results.
  EXPECT_EQ(pool.size(), contexts_after_first);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (size_t i = 0; i < first.results.size(); ++i) {
    ExpectSameResult(first.results[i], second.results[i]);
  }
}

TEST_F(QueryBatchTest, OnAnswerStreamsEveryAnswerInReleaseOrder) {
  std::vector<BatchQuerySpec> specs = MakeSpecs();
  SearchOptions options;
  options.k = 5;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::mutex mu;
    std::vector<std::vector<AnswerTree>> streamed(specs.size());
    BatchOptions bopt;
    bopt.num_threads = threads;
    bopt.on_answer = [&](size_t query_index, const AnswerTree& answer) {
      std::lock_guard<std::mutex> lock(mu);
      streamed[query_index].push_back(answer);  // copy: ref dies after call
    };
    BatchResult batch =
        engine_->QueryBatch(specs, Algorithm::kBidirectional, options, bopt);
    // Per query, the streamed sequence is exactly the final result — the
    // callback fires in release order, which IS output order.
    for (size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " query=" +
                   std::to_string(i));
      ASSERT_EQ(streamed[i].size(), batch.results[i].answers.size());
      for (size_t j = 0; j < streamed[i].size(); ++j) {
        EXPECT_TRUE(SameAnswer(streamed[i][j], batch.results[i].answers[j]));
      }
    }
    // Streaming must not change the results themselves.
    std::vector<SearchResult> reference;
    for (const BatchQuerySpec& s : specs) {
      reference.push_back(
          engine_->Query(s.keywords, Algorithm::kBidirectional, options));
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      ExpectSameResult(batch.results[i], reference[i]);
    }
  }
}

}  // namespace
}  // namespace banks
