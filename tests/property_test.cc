#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "test_util.h"
#include "util/rng.h"

namespace banks {
namespace {

/// Property-style sweeps: every (algorithm × random-graph seed) cell
/// must satisfy the structural invariants of the answer model. This is
/// the repository's fuzz layer — seeds are fixed for reproducibility.
struct PropertyCase {
  Algorithm algorithm;
  uint64_t seed;
};

class SearchProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    graph_ = testing::MakeRandomGraph(220, 900, GetParam().seed);
    // Derive deterministic origin sets from the seed.
    Rng rng(GetParam().seed * 7919 + 13);
    size_t num_keywords = 2 + rng.Below(3);
    origins_.resize(num_keywords);
    for (auto& s : origins_) {
      size_t count = 1 + rng.Below(12);
      for (size_t i = 0; i < count; ++i) {
        s.push_back(static_cast<NodeId>(rng.Below(graph_.num_nodes())));
      }
    }
  }

  Graph graph_;
  std::vector<std::vector<NodeId>> origins_;
};

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (Algorithm a : {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                      Algorithm::kBidirectional}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      cases.push_back(PropertyCase{a, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SearchProperties, ::testing::ValuesIn(MakeCases()),
    [](const auto& info) {
      std::string name = AlgorithmName(info.param.algorithm);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_seed" + std::to_string(info.param.seed);
    });

TEST_P(SearchProperties, AnswersAreValidTrees) {
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  EXPECT_EQ(testing::ValidateAnswers(graph_, r), "");
}

TEST_P(SearchProperties, AnswersAreMinimalRooted) {
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  for (const AnswerTree& t : r.answers) {
    EXPECT_TRUE(t.IsMinimalRooted());
  }
}

TEST_P(SearchProperties, KeywordNodesComeFromOriginSets) {
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  for (const AnswerTree& t : r.answers) {
    ASSERT_EQ(t.keyword_nodes.size(), origins_.size());
    for (size_t i = 0; i < origins_.size(); ++i) {
      EXPECT_NE(std::find(origins_[i].begin(), origins_[i].end(),
                          t.keyword_nodes[i]),
                origins_[i].end())
          << "keyword node not in S_" << i;
    }
  }
}

TEST_P(SearchProperties, KeywordDistancesMatchTreePaths) {
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  for (const AnswerTree& t : r.answers) {
    // Recompute root→keyword path length inside the tree.
    std::map<NodeId, std::pair<NodeId, double>> parent;  // child → (parent, w)
    for (const AnswerEdge& e : t.edges) {
      parent[e.child] = {e.parent, e.weight};
    }
    for (size_t i = 0; i < t.keyword_nodes.size(); ++i) {
      double d = 0;
      NodeId cur = t.keyword_nodes[i];
      size_t guard = 0;
      while (cur != t.root) {
        auto it = parent.find(cur);
        ASSERT_NE(it, parent.end());
        d += it->second.second;
        cur = it->second.first;
        ASSERT_LE(++guard, t.edges.size());
      }
      EXPECT_NEAR(d, t.keyword_distances[i], 1e-4);
    }
  }
}

TEST_P(SearchProperties, ErawEqualsDistanceSum) {
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  for (const AnswerTree& t : r.answers) {
    double sum = 0;
    for (double d : t.keyword_distances) sum += d;
    EXPECT_NEAR(sum, t.edge_score_raw, 1e-6);
  }
}

TEST_P(SearchProperties, OutputOrderMatchesScores) {
  SearchOptions options;
  options.k = 10;
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_, options);
  EXPECT_TRUE(testing::ScoresNonIncreasing(r));
}

TEST_P(SearchProperties, NoDuplicateSignatures) {
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  std::set<uint64_t> sigs;
  for (const AnswerTree& t : r.answers) {
    EXPECT_TRUE(sigs.insert(t.Signature()).second);
  }
}

TEST_P(SearchProperties, DepthRespectsDmax) {
  SearchOptions options;
  options.dmax = 3;
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_, options);
  for (const AnswerTree& t : r.answers) {
    // No root→keyword path can exceed dmax edges.
    for (size_t i = 0; i < t.keyword_nodes.size(); ++i) {
      std::map<NodeId, NodeId> parent;
      for (const AnswerEdge& e : t.edges) parent[e.child] = e.parent;
      size_t hops = 0;
      NodeId cur = t.keyword_nodes[i];
      while (cur != t.root && hops <= t.edges.size()) {
        cur = parent.at(cur);
        hops++;
      }
      EXPECT_LE(hops, 2 * options.dmax)
          << "path far beyond the depth cutoff";
    }
  }
}

TEST_P(SearchProperties, DeterministicAcrossRuns) {
  SearchResult a =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  SearchResult b =
      testing::RunSearch(GetParam().algorithm, graph_, origins_);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].Signature(), b.answers[i].Signature());
    EXPECT_DOUBLE_EQ(a.answers[i].score, b.answers[i].score);
  }
  EXPECT_EQ(a.metrics.nodes_explored, b.metrics.nodes_explored);
  EXPECT_EQ(a.metrics.nodes_touched, b.metrics.nodes_touched);
}

/// The three algorithms implement one answer model: their top answers
/// must agree in score (ties may differ in identity).
TEST_P(SearchProperties, TopScoreAgreesWithSIBackwardReference) {
  SearchOptions options;
  options.k = 1;
  SearchResult ref = testing::RunSearch(Algorithm::kBackwardSI, graph_,
                                        origins_, options);
  SearchResult r =
      testing::RunSearch(GetParam().algorithm, graph_, origins_, options);
  ASSERT_EQ(ref.answers.empty(), r.answers.empty());
  if (!ref.answers.empty()) {
    EXPECT_NEAR(ref.answers[0].score, r.answers[0].score, 1e-6);
  }
}

}  // namespace
}  // namespace banks
