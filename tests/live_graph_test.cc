// Live-graph v1 differential harness (docs/UPDATES.md): a randomized
// sequence of append-only UpdateBatches applied through
// Engine::ApplyUpdate must leave every epoch snapshot *byte-identical*
// under search to a fresh-built engine of the same logical state —
// ARCHITECTURE.md contract 5 — at every algorithm × bound mode × shard
// count, over a resident base and over a paged one. Plus: snapshot
// isolation for streams and subscriptions racing with updates, answer-
// cache correctness across epochs, and the paged-file fault-injection
// path (truncated file → kIoError, not silence).
//
// This whole file runs under TSan in CI (the *LiveGraph* filter): the
// concurrent tests are the data-race proof for the publish/pin
// protocol.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "search/answer.h"
#include "search/answer_cache.h"
#include "serve/queue_sink.h"
#include "serve/scheduler.h"
#include "storage/paged_store.h"
#include "test_util.h"
#include "text/inverted_index.h"

namespace banks {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

/// Execution-independent metric comparison: page_*/io_errors and timing
/// fields are deliberately excluded (metrics.h).
void ExpectSameDeterministicMetrics(const SearchMetrics& a,
                                    const SearchMetrics& b) {
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.edges_relaxed, b.edges_relaxed);
  EXPECT_EQ(a.propagation_steps, b.propagation_steps);
  EXPECT_EQ(a.answers_generated, b.answers_generated);
  EXPECT_EQ(a.answers_output, b.answers_output);
  EXPECT_EQ(a.bsp_rounds, b.bsp_rounds);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

void ExpectSameResult(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_TRUE(SameAnswer(a.answers[i], b.answers[i])) << "answer " << i;
    EXPECT_DOUBLE_EQ(a.answers[i].score, b.answers[i].score) << "answer " << i;
  }
  ExpectSameDeterministicMetrics(a.metrics, b.metrics);
}

// ---------------------------------------------------------------------
// Logical-state mirror
// ---------------------------------------------------------------------

/// The harness's source of truth: the full logical state an engine is
/// supposed to hold after a batch sequence. Every batch is applied BOTH
/// to the live engine (ApplyUpdate → overlays) and to this mirror; a
/// reference engine fresh-built from the mirror is the oracle.
struct Mirror {
  struct Node {
    NodeType type = kUntypedNode;
    std::string label;
    std::vector<std::string> texts;
  };
  std::vector<Node> nodes;
  std::vector<std::string> type_names;  // intern order == engine order
  std::vector<UpdateBatch::NewEdge> edges;

  NodeType Intern(const std::string& name) {
    if (name.empty()) return kUntypedNode;
    for (size_t i = 0; i < type_names.size(); ++i) {
      if (type_names[i] == name) return static_cast<NodeType>(i);
    }
    type_names.push_back(name);
    return static_cast<NodeType>(type_names.size() - 1);
  }

  /// Mirrors Engine::ApplyUpdate's logical effect.
  void Apply(const UpdateBatch& batch) {
    for (const UpdateBatch::NewNode& n : batch.nodes) {
      Node node;
      node.type = Intern(n.type);
      node.label = n.label;
      if (!n.text.empty()) node.texts.push_back(n.text);
      nodes.push_back(std::move(node));
    }
    for (const UpdateBatch::NewEdge& e : batch.edges) edges.push_back(e);
    for (const UpdateBatch::NewText& t : batch.texts) {
      if (!t.text.empty()) nodes[t.node].texts.push_back(t.text);
    }
  }

  /// Fresh build of the mirror's whole state: the contract-5 oracle.
  DataGraph BuildData() const {
    GraphBuilder b;
    for (const std::string& name : type_names) b.InternType(name);
    for (const Node& n : nodes) b.AddNode(n.type);
    for (const UpdateBatch::NewEdge& e : edges) b.AddEdge(e.u, e.v, e.weight);
    DataGraph dg;
    dg.graph = b.Build();
    for (NodeId v = 0; v < nodes.size(); ++v) {
      for (const std::string& text : nodes[v].texts) {
        dg.index.AddDocument(v, text);
      }
    }
    dg.index.Freeze();
    dg.table_first_node = {0, static_cast<NodeId>(nodes.size())};
    dg.node_labels.reserve(nodes.size());
    for (const Node& n : nodes) dg.node_labels.push_back(n.label);
    return dg;
  }

  Engine BuildEngine(const EngineOptions& options = {}) const {
    return Engine(BuildData(), options);
  }
};

const char* const kVocab[] = {"alpha", "beta",  "gamma", "delta",
                              "epsilon", "zeta", "eta",   "theta"};
constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);
const char* const kTypes[] = {"", "paper", "author", "cites"};

std::string RandText(std::mt19937_64& rng) {
  std::string text;
  const size_t words = 1 + rng() % 3;
  for (size_t i = 0; i < words; ++i) {
    if (!text.empty()) text += ' ';
    text += kVocab[rng() % kVocabSize];
  }
  return text;
}

/// Exact-in-float weights, so double→float conversion points in the
/// build and delta paths cannot diverge by construction of the inputs
/// (the paths must still agree on *when* they narrow — that part is
/// exercised by the shared log2-derived backward weights).
double RandWeight(std::mt19937_64& rng) {
  return 0.5 + 0.5 * static_cast<double>(rng() % 6);
}

UpdateBatch::NewEdge RandEdge(std::mt19937_64& rng, size_t num_nodes) {
  UpdateBatch::NewEdge e;
  e.u = static_cast<NodeId>(rng() % num_nodes);
  e.v = static_cast<NodeId>(rng() % num_nodes);
  if (e.v == e.u) e.v = (e.v + 1) % num_nodes;  // no self-loops in v1
  e.weight = RandWeight(rng);
  return e;
}

/// Seed state: a few dozen typed nodes with vocab texts and random edges.
Mirror SeedMirror(std::mt19937_64& rng, size_t num_nodes, size_t num_edges) {
  Mirror m;
  UpdateBatch seed;
  for (size_t i = 0; i < num_nodes; ++i) {
    UpdateBatch::NewNode n;
    n.type = kTypes[rng() % 4];
    n.label = "n" + std::to_string(i);
    n.text = RandText(rng);
    seed.nodes.push_back(std::move(n));
  }
  for (size_t i = 0; i < num_edges; ++i) {
    seed.edges.push_back(RandEdge(rng, num_nodes));
  }
  m.Apply(seed);
  return m;
}

/// One randomized append-only batch against the current mirror size:
/// new typed nodes with text, new edges (old↔new endpoints mixed), and
/// appended postings on existing nodes.
UpdateBatch RandBatch(std::mt19937_64& rng, size_t num_nodes) {
  UpdateBatch batch;
  const size_t new_nodes = rng() % 4;  // 0..3 (0 = edge/text-only batch)
  for (size_t i = 0; i < new_nodes; ++i) {
    UpdateBatch::NewNode n;
    n.type = kTypes[rng() % 4];
    n.label = "u" + std::to_string(num_nodes + i);
    n.text = RandText(rng);
    batch.nodes.push_back(std::move(n));
  }
  const size_t total = num_nodes + new_nodes;
  const size_t new_edges = 1 + rng() % 4;
  for (size_t i = 0; i < new_edges; ++i) {
    batch.edges.push_back(RandEdge(rng, total));
  }
  const size_t new_texts = rng() % 3;
  for (size_t i = 0; i < new_texts; ++i) {
    UpdateBatch::NewText t;
    t.node = static_cast<NodeId>(rng() % num_nodes);
    t.text = RandText(rng);
    batch.texts.push_back(std::move(t));
  }
  return batch;
}

const std::vector<std::vector<std::string>>& Queries() {
  static const auto* queries = new std::vector<std::vector<std::string>>{
      {"alpha", "delta"}, {"beta", "gamma"}, {"epsilon", "zeta"}};
  return *queries;
}

/// Full contract-5 grid of one live engine against its mirror's fresh
/// build: 3 algorithms × 3 bound modes × shards {1, 4}.
void ExpectMatchesFreshBuild(const Engine& live, const Mirror& mirror,
                             const EngineOptions& engine_options) {
  Engine reference = mirror.BuildEngine(engine_options);
  for (Algorithm algorithm : {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                              Algorithm::kBidirectional}) {
    for (BoundMode bound :
         {BoundMode::kTight, BoundMode::kLoose, BoundMode::kImmediate}) {
      for (uint32_t shards : {1u, 4u}) {
        SearchOptions options;
        options.k = 6;
        options.bound = bound;
        options.shard_count = shards;
        for (const auto& keywords : Queries()) {
          SearchResult expect = reference.Query(keywords, algorithm, options);
          SearchResult got = live.Query(keywords, algorithm, options);
          ExpectSameResult(expect, got);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Differential harness: resident base
// ---------------------------------------------------------------------

TEST(LiveGraph, InterleavedUpdatesMatchFreshBuildAcrossGrid) {
  std::mt19937_64 rng(7);
  Mirror mirror = SeedMirror(rng, 40, 80);
  EngineOptions engine_options;  // compute_prestige on: scores must also
  Engine live = mirror.BuildEngine(engine_options);  // track re-weighting

  for (int epoch = 1; epoch <= 6; ++epoch) {
    UpdateBatch batch = RandBatch(rng, mirror.nodes.size());
    const uint64_t published = live.ApplyUpdate(batch);
    EXPECT_EQ(published, static_cast<uint64_t>(epoch));
    mirror.Apply(batch);
    ASSERT_NO_FATAL_FAILURE(
        ExpectMatchesFreshBuild(live, mirror, engine_options))
        << "epoch " << epoch;
  }
}

TEST(LiveGraph, UniformPrestigeVariantAlsoMatches) {
  // The compute_prestige=false path carries uniform prestige across
  // growing node counts — the vector must be resized, not carried.
  std::mt19937_64 rng(13);
  Mirror mirror = SeedMirror(rng, 30, 60);
  EngineOptions engine_options;
  engine_options.compute_prestige = false;
  Engine live = mirror.BuildEngine(engine_options);
  for (int epoch = 1; epoch <= 4; ++epoch) {
    UpdateBatch batch = RandBatch(rng, mirror.nodes.size());
    live.ApplyUpdate(batch);
    mirror.Apply(batch);
    ASSERT_NO_FATAL_FAILURE(
        ExpectMatchesFreshBuild(live, mirror, engine_options))
        << "epoch " << epoch;
  }
}

TEST(LiveGraph, EmptyAndPostingOnlyBatchesKeepStructureEpoch) {
  std::mt19937_64 rng(3);
  Mirror mirror = SeedMirror(rng, 20, 40);
  Engine live = mirror.BuildEngine();
  EXPECT_EQ(live.epoch(), 0u);
  EXPECT_EQ(live.structure_epoch(), 0u);

  EXPECT_EQ(live.ApplyUpdate(UpdateBatch{}), 1u);
  EXPECT_EQ(live.structure_epoch(), 0u);  // nothing structural happened

  UpdateBatch texts_only;
  texts_only.texts.push_back({3, "omicron"});
  EXPECT_EQ(live.ApplyUpdate(texts_only), 2u);
  EXPECT_EQ(live.structure_epoch(), 0u);
  mirror.Apply(texts_only);
  // The new posting resolves; the graph itself is untouched.
  EXPECT_EQ(live.Resolve({"omicron"}), (std::vector<std::vector<NodeId>>{{3}}));
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesFreshBuild(live, mirror, {}));

  UpdateBatch structural;
  structural.edges.push_back(RandEdge(rng, mirror.nodes.size()));
  EXPECT_EQ(live.ApplyUpdate(structural), 3u);
  EXPECT_EQ(live.structure_epoch(), 1u);
  mirror.Apply(structural);
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesFreshBuild(live, mirror, {}));
}

TEST(LiveGraph, RelationMatchesSurviveUpdates) {
  // Relation ranges are immutable in v1 and must carry through index
  // overlays: a relation-name keyword matches the same range at every
  // epoch, merged with any postings the term also has.
  Mirror mirror;
  UpdateBatch seed;
  for (int i = 0; i < 8; ++i) {
    seed.nodes.push_back({"paper", "p" + std::to_string(i), "alpha"});
  }
  seed.edges.push_back({0, 1, 1.0});
  mirror.Apply(seed);
  // Built inline rather than via BuildData: the relation must be
  // registered before Freeze (InvertedIndex asserts on late writes).
  DataGraph dg;
  {
    GraphBuilder b;
    for (const std::string& name : mirror.type_names) b.InternType(name);
    for (const Mirror::Node& n : mirror.nodes) b.AddNode(n.type);
    for (const UpdateBatch::NewEdge& e : mirror.edges) {
      b.AddEdge(e.u, e.v, e.weight);
    }
    dg.graph = b.Build();
    for (NodeId v = 0; v < mirror.nodes.size(); ++v) {
      for (const std::string& text : mirror.nodes[v].texts) {
        dg.index.AddDocument(v, text);
      }
    }
    dg.index.RegisterRelation("paper", 0, 8);
    dg.index.Freeze();
    dg.table_first_node = {0, static_cast<NodeId>(mirror.nodes.size())};
    for (const Mirror::Node& n : mirror.nodes) {
      dg.node_labels.push_back(n.label);
    }
  }
  Engine live(std::move(dg));

  std::vector<NodeId> all = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(live.index().Match("paper"), all);

  UpdateBatch update;
  update.nodes.push_back({"paper", "p8", "paper beta"});
  update.edges.push_back({8, 0, 1.0});
  live.ApplyUpdate(update);
  // The relation range still matches 0..7; node 8's text also contains
  // the literal token "paper", and the union must include both.
  all.push_back(8);
  EXPECT_EQ(live.index().Match("paper"), all);
  EXPECT_EQ(live.index().Match("beta"), std::vector<NodeId>{8});
  EXPECT_EQ(live.index().Match("alpha"),
            (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// ---------------------------------------------------------------------
// Differential harness: paged base
// ---------------------------------------------------------------------

TEST(LiveGraph, PagedBaseWithOverlaysMatchesFreshBuild) {
  std::mt19937_64 rng(21);
  Mirror mirror = SeedMirror(rng, 48, 100);
  const std::string path = TempPath("live_paged.banks");
  {
    Engine seed = mirror.BuildEngine();
    PagedStoreOptions save;
    save.page_size = 1u << 10;
    save.inline_run_bytes = 0;  // all adjacency must fault
    ASSERT_TRUE(PagedStore::Save(seed.data(), seed.prestige(), path, save));
  }
  PagedOpenOptions open;
  open.pool_bytes = 8u << 10;  // far below the working set
  std::optional<PagedData> pd = PagedStore::Open(path, open);
  ASSERT_TRUE(pd.has_value());
  std::shared_ptr<PagedStore> store = pd->store;
  Engine live(std::move(pd->data));

  EngineOptions engine_options;  // stored prestige ≡ recomputed (same data)
  for (int epoch = 1; epoch <= 4; ++epoch) {
    UpdateBatch batch = RandBatch(rng, mirror.nodes.size());
    live.ApplyUpdate(batch);
    mirror.Apply(batch);
    ASSERT_NO_FATAL_FAILURE(
        ExpectMatchesFreshBuild(live, mirror, engine_options))
        << "epoch " << epoch;
  }
  // The tiny pool must actually have paged while overlay queries ran.
  EXPECT_GT(store->pool().stats().misses, 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Snapshot isolation
// ---------------------------------------------------------------------

TEST(LiveGraph, OpenStreamsKeepTheirEpochAcrossUpdates) {
  std::mt19937_64 rng(31);
  Mirror mirror = SeedMirror(rng, 30, 60);
  Engine live = mirror.BuildEngine();
  SearchOptions options;
  options.k = 6;

  SearchResult expect_old =
      live.Query(Queries()[0], Algorithm::kBidirectional, options);
  AnswerStream stream =
      live.OpenQuery(Queries()[0], Algorithm::kBidirectional, options);
  std::optional<AnswerTree> first = stream.Next();  // search has begun

  // Update lands mid-stream; the stream must keep reading its epoch.
  UpdateBatch batch = RandBatch(rng, mirror.nodes.size());
  batch.texts.push_back({1, "alpha delta"});  // touches the query's terms
  live.ApplyUpdate(batch);
  mirror.Apply(batch);

  SearchResult rest = stream.Drain();
  std::vector<AnswerTree> streamed;
  if (first) streamed.push_back(std::move(*first));
  for (AnswerTree& t : rest.answers) streamed.push_back(std::move(t));
  ASSERT_EQ(streamed.size(), expect_old.answers.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_TRUE(SameAnswer(expect_old.answers[i], streamed[i]))
        << "answer " << i;
  }

  // A query opened after the publish sees the new state.
  Engine reference = mirror.BuildEngine();
  ExpectSameResult(
      reference.Query(Queries()[0], Algorithm::kBidirectional, options),
      live.Query(Queries()[0], Algorithm::kBidirectional, options));
}

TEST(LiveGraph, ParkedSubscriptionPinsItsEpoch) {
  std::mt19937_64 rng(41);
  Mirror mirror = SeedMirror(rng, 30, 60);
  Engine live = mirror.BuildEngine();
  SearchOptions options;
  options.k = 6;
  SearchResult expect_old =
      live.Query(Queries()[1], Algorithm::kBackwardMI, options);
  ASSERT_GT(expect_old.answers.size(), 1u);

  SchedulerOptions sched_options;
  sched_options.num_workers = 0;  // manual drive: we control the clock
  Scheduler scheduler(sched_options);
  QueueSink sink;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  subscribe.answer_credits = 1;  // park in credit-wait after one answer
  Subscription sub = live.Subscribe(Queries()[1], Algorithm::kBackwardMI,
                                    &sink, options, subscribe);
  for (int i = 0; i < 10000 && scheduler.Snapshot().credit_waiting == 0; ++i) {
    scheduler.DriveOne();
  }
  Scheduler::Stats parked = scheduler.Snapshot();
  ASSERT_EQ(parked.credit_waiting, 1u);
  // The parked task holds NO context lease but still pins epoch 0 —
  // exactly what keeps update reclamation honest.
  EXPECT_EQ(parked.contexts_attached, 0u);
  EXPECT_EQ(parked.pinned_epochs, 1u);
  EXPECT_EQ(parked.oldest_live_epoch, 0u);

  // Updates land while the task is parked; delivery then resumes and
  // must still stream the submit-time epoch's answers.
  for (int i = 0; i < 2; ++i) {
    UpdateBatch batch = RandBatch(rng, mirror.nodes.size());
    live.ApplyUpdate(batch);
    mirror.Apply(batch);
  }
  EXPECT_EQ(live.epoch(), 2u);

  sub.AddCredits(1000);
  while (!sub.finished()) {
    if (!scheduler.DriveOne()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  EXPECT_EQ(sub.Wait(), SubscribeStatus::kCompleted);
  std::vector<AnswerTree> got;
  AnswerTree t;
  while (sink.TryPop(&t)) got.push_back(t);
  ASSERT_EQ(got.size(), expect_old.answers.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameAnswer(expect_old.answers[i], got[i])) << "answer " << i;
  }
  // Terminal transition released the pin.
  EXPECT_EQ(scheduler.Snapshot().pinned_epochs, 0u);
}

// ---------------------------------------------------------------------
// Concurrency (the TSan proof)
// ---------------------------------------------------------------------

TEST(LiveGraph, ConcurrentWritersAndReadersStayCoherent) {
  std::mt19937_64 rng(51);
  Mirror mirror = SeedMirror(rng, 40, 80);
  Engine live = mirror.BuildEngine();

  // Pre-generate the batches so the writer thread needs no shared rng.
  std::vector<UpdateBatch> batches;
  {
    Mirror shadow = mirror;
    for (int i = 0; i < 8; ++i) {
      batches.push_back(RandBatch(rng, shadow.nodes.size()));
      shadow.Apply(batches.back());
    }
  }

  SchedulerOptions sched_options;
  sched_options.num_workers = 2;
  Scheduler scheduler(sched_options);
  std::atomic<bool> stop{false};

  std::thread writer([&]() {
    for (const UpdateBatch& batch : batches) {
      live.ApplyUpdate(batch);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r]() {
      SearchOptions options;
      options.k = 5;
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& keywords = Queries()[(r + i++) % Queries().size()];
        if (r == 0) {
          // Scheduled path: epoch pin rides with the task.
          QueueSink sink;
          SubscribeOptions subscribe;
          subscribe.scheduler = &scheduler;
          Subscription sub = live.Subscribe(
              keywords, Algorithm::kBidirectional, &sink, options, subscribe);
          EXPECT_EQ(sub.Wait(), SubscribeStatus::kCompleted);
        } else {
          // Inline path: whatever epoch the query pinned, its answer
          // order must be coherent (score-sorted, §4.5 output order).
          SearchResult result =
              live.Query(keywords, Algorithm::kBidirectional, options);
          EXPECT_TRUE(testing::ScoresNonIncreasing(result));
        }
      }
    });
  }
  writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Settled state must equal the fresh build of the final mirror.
  for (const UpdateBatch& batch : batches) mirror.Apply(batch);
  EXPECT_EQ(live.epoch(), batches.size());
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesFreshBuild(live, mirror, {}));
}

// ---------------------------------------------------------------------
// Answer cache across epochs
// ---------------------------------------------------------------------

TEST(LiveGraph, AnswerCacheStaysCorrectAcrossUpdates) {
  std::mt19937_64 rng(61);
  Mirror mirror = SeedMirror(rng, 30, 60);
  Engine live = mirror.BuildEngine();
  AnswerCache cache;
  SearchOptions options;
  options.k = 5;
  BatchOptions batch_options;
  batch_options.answer_cache = &cache;
  std::vector<BatchQuerySpec> specs(2);
  specs[0].keywords = {"alpha"};
  specs[1].keywords = {"beta"};

  // Warm the cache, then hit it.
  live.QueryBatch(specs, Algorithm::kBidirectional, options, batch_options);
  BatchResult warm =
      live.QueryBatch(specs, Algorithm::kBidirectional, options, batch_options);
  EXPECT_EQ(warm.answer_cache_hits, 2u);

  // Structural update: the structure epoch in the key makes every old
  // entry unreachable — both specs must miss and re-execute, and the
  // refreshed results must match the new state's fresh build.
  UpdateBatch structural;
  structural.nodes.push_back({"paper", "pnew", "alpha beta"});
  structural.edges.push_back({static_cast<NodeId>(mirror.nodes.size()), 0, 1.0});
  live.ApplyUpdate(structural, &cache);
  mirror.Apply(structural);
  BatchResult refreshed =
      live.QueryBatch(specs, Algorithm::kBidirectional, options, batch_options);
  EXPECT_EQ(refreshed.answer_cache_hits, 0u);
  Engine reference = mirror.BuildEngine();
  BatchResult expect = reference.QueryBatch(specs, Algorithm::kBidirectional,
                                            options, BatchOptions{});
  ASSERT_NO_FATAL_FAILURE(
      ExpectSameResult(expect.results[0], refreshed.results[0]));
  ASSERT_NO_FATAL_FAILURE(
      ExpectSameResult(expect.results[1], refreshed.results[1]));

  // Posting-only update touching "alpha": the key keeps its structure
  // epoch, so stale-entry defense is InvalidateKeywords — the alpha
  // entry must be dropped, the untouched beta entry must survive.
  live.QueryBatch(specs, Algorithm::kBidirectional, options, batch_options);
  UpdateBatch texts_only;
  texts_only.texts.push_back({2, "alpha"});
  live.ApplyUpdate(texts_only, &cache);
  mirror.Apply(texts_only);
  BatchResult after =
      live.QueryBatch(specs, Algorithm::kBidirectional, options, batch_options);
  EXPECT_EQ(after.answer_cache_hits, 1u);  // beta survived, alpha evicted
  Engine reference2 = mirror.BuildEngine();
  BatchResult expect2 = reference2.QueryBatch(specs, Algorithm::kBidirectional,
                                              options, BatchOptions{});
  ASSERT_NO_FATAL_FAILURE(
      ExpectSameResult(expect2.results[0], after.results[0]));
  ASSERT_NO_FATAL_FAILURE(
      ExpectSameResult(expect2.results[1], after.results[1]));
}

// ---------------------------------------------------------------------
// Fault injection: truncated paged file → kIoError, not silence
// ---------------------------------------------------------------------

TEST(LiveGraph, TruncatedPagedFileFailsQueriesLoudly) {
  std::mt19937_64 rng(71);
  Mirror mirror = SeedMirror(rng, 60, 120);
  const std::string path = TempPath("live_truncated.banks");
  {
    Engine seed = mirror.BuildEngine();
    PagedStoreOptions save;
    save.page_size = 1u << 10;
    save.inline_run_bytes = 0;
    ASSERT_TRUE(PagedStore::Save(seed.data(), seed.prestige(), path, save));
  }
  PagedOpenOptions open;
  open.pool_bytes = 2u << 10;  // two pages: almost nothing stays pooled
  std::optional<PagedData> pd = PagedStore::Open(path, open);
  ASSERT_TRUE(pd.has_value());
  std::shared_ptr<PagedStore> store = pd->store;
  Engine live(std::move(pd->data));
  SearchOptions options;
  options.k = 8;

  // Resolve BEFORE the truncation (postings are paged too) so the
  // searchers themselves hit the failed reads mid-expansion.
  std::vector<std::vector<NodeId>> origins = live.Resolve(Queries()[0]);
  SearchResult healthy =
      live.QueryResolved(origins, Algorithm::kBidirectional, options);
  EXPECT_EQ(healthy.metrics.io_errors, 0u);

  // Sever most of the file under the open store — the mid-run disk
  // corruption the silent zero-fill bug used to paper over.
  ASSERT_EQ(::truncate(path.c_str(), 1u << 10), 0);

  SearchResult partial =
      live.QueryResolved(origins, Algorithm::kBidirectional, options);
  // The search must terminate (not hang, not fabricate empty adjacency
  // silently) and report the failure in its metrics.
  EXPECT_GT(partial.metrics.io_errors, 0u);
  EXPECT_GT(store->pool().stats().io_errors, 0u);

  // Serving path: the task finishes kIoError and the scheduler counts it.
  SchedulerOptions sched_options;
  sched_options.num_workers = 2;
  sched_options.quantum_steps = 3;
  Scheduler scheduler(sched_options);
  QueueSink sink;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  Subscription sub = live.SubscribeResolved(origins, Algorithm::kBidirectional,
                                            &sink, options, subscribe);
  EXPECT_EQ(sub.Wait(), SubscribeStatus::kIoError);
  EXPECT_EQ(scheduler.Snapshot().io_errors, 1u);
  EXPECT_EQ(scheduler.Snapshot().pinned_epochs, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace banks
