#include "search/context_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace banks {
namespace {

TEST(SearchContextPoolTest, AcquireCreatesOnDemand) {
  SearchContextPool pool;
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.available(), 0u);
  {
    SearchContextPool::Lease a = pool.Acquire();
    SearchContextPool::Lease b = pool.Acquire();
    ASSERT_NE(a.get(), nullptr);
    ASSERT_NE(b.get(), nullptr);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_EQ(pool.acquires(), 2u);
}

TEST(SearchContextPoolTest, PreSizedPoolStartsIdle) {
  SearchContextPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.available(), 3u);
  SearchContextPool::Lease a = pool.Acquire();
  EXPECT_EQ(pool.size(), 3u);  // no growth while idle contexts exist
  EXPECT_EQ(pool.available(), 2u);
}

TEST(SearchContextPoolTest, RecyclesWarmContextsLifo) {
  SearchContextPool pool;
  SearchContext* first;
  {
    SearchContextPool::Lease lease = pool.Acquire();
    first = lease.get();
    first->BeginQuery(2);  // warm it up a little
  }
  // The most recently returned context is handed out again.
  SearchContextPool::Lease again = pool.Acquire();
  EXPECT_EQ(again.get(), first);
  EXPECT_EQ(again->queries_started(), 1u);  // same object, kept its state
  EXPECT_EQ(pool.size(), 1u);
}

TEST(SearchContextPoolTest, LeaseMoveTransfersOwnership) {
  SearchContextPool pool;
  SearchContextPool::Lease a = pool.Acquire();
  SearchContext* ctx = a.get();
  SearchContextPool::Lease b = std::move(a);
  EXPECT_EQ(a.get(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.get(), ctx);
  EXPECT_EQ(pool.available(), 0u);  // still leased through b
  b.Reset();
  EXPECT_EQ(pool.available(), 1u);
  b.Reset();  // idempotent
  EXPECT_EQ(pool.available(), 1u);
}

TEST(SearchContextPoolTest, MoveAssignReleasesPrevious) {
  SearchContextPool pool;
  SearchContextPool::Lease a = pool.Acquire();
  SearchContextPool::Lease b = pool.Acquire();
  EXPECT_EQ(pool.available(), 0u);
  a = std::move(b);  // a's original context goes back to the pool
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_NE(a.get(), nullptr);
}

TEST(SearchContextPoolTest, ConcurrentAcquireHandsOutDistinctContexts) {
  SearchContextPool pool;
  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 200;
  std::atomic<bool> overlap{false};
  std::atomic<int> in_use{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (size_t i = 0; i < kIterations; ++i) {
        SearchContextPool::Lease lease = pool.Acquire();
        // Touch the context: BeginQuery mutates freely, which ASan/TSan
        // would flag if two leases ever aliased one context.
        lease->BeginQuery(1 + (i % 3));
        in_use.fetch_add(1);
        if (in_use.load() > static_cast<int>(kThreads)) overlap = true;
        in_use.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(overlap.load());
  // Never more contexts than the worst-case concurrency.
  EXPECT_LE(pool.size(), kThreads);
  EXPECT_EQ(pool.available(), pool.size());
  EXPECT_EQ(pool.acquires(), kThreads * kIterations);
}

}  // namespace
}  // namespace banks
