#include "banks/engine.h"

#include <gtest/gtest.h>

#include "datasets/dblp_gen.h"

namespace banks {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpConfig config;
    config.num_authors = 200;
    config.num_papers = 400;
    config.num_conferences = 15;
    db_ = new Database(GenerateDblp(config));
    engine_ = new Engine(Engine::FromDatabase(*db_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static Database* db_;
  static Engine* engine_;
};

Database* EngineTest::db_ = nullptr;
Engine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, GraphMatchesDatabase) {
  EXPECT_EQ(engine_->graph().num_nodes(), db_->TotalRows());
  EXPECT_EQ(engine_->prestige().size(), db_->TotalRows());
}

TEST_F(EngineTest, ResolveRelationName) {
  auto origins = engine_->Resolve({"author"});
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(origins[0].size(), db_->FindTable("author")->num_rows());
}

TEST_F(EngineTest, ResolveUnknownKeywordIsEmpty) {
  auto origins = engine_->Resolve({"qqqqzzzz"});
  EXPECT_TRUE(origins[0].empty());
}

TEST_F(EngineTest, QueryReturnsValidAnswers) {
  // Use the most frequent title word paired with an author's surname.
  std::string frequent;
  size_t best = 0;
  // Probe a few known-vocabulary words via the index by sampling paper
  // titles directly.
  const Table& paper = *db_->FindTable("paper");
  for (RowId r = 0; r < 20; ++r) {
    for (const std::string& tok :
         engine_->index().tokenizer().Tokenize(paper.RowText(r))) {
      size_t df = engine_->index().MatchCount(tok);
      if (df > best) {
        best = df;
        frequent = tok;
      }
    }
  }
  ASSERT_FALSE(frequent.empty());
  const Table& author = *db_->FindTable("author");
  std::string surname =
      engine_->index().tokenizer().Tokenize(author.RowText(0)).back();

  SearchOptions options;
  options.k = 5;
  SearchResult r = engine_->Query({frequent, surname},
                                  Algorithm::kBidirectional, options);
  for (const AnswerTree& t : r.answers) {
    std::string error;
    EXPECT_TRUE(t.Validate(engine_->graph(), &error)) << error;
  }
}

TEST_F(EngineTest, AllAlgorithmsAgreeOnTopAnswerScore) {
  const Table& author = *db_->FindTable("author");
  std::string s0 =
      engine_->index().tokenizer().Tokenize(author.RowText(0)).back();
  std::string s1 =
      engine_->index().tokenizer().Tokenize(author.RowText(1)).back();
  auto origins = engine_->Resolve({s0, s1});
  if (origins[0].empty() || origins[1].empty()) GTEST_SKIP();

  SearchOptions options;
  options.k = 3;
  SearchResult mi =
      engine_->QueryResolved(origins, Algorithm::kBackwardMI, options);
  SearchResult si =
      engine_->QueryResolved(origins, Algorithm::kBackwardSI, options);
  SearchResult bd =
      engine_->QueryResolved(origins, Algorithm::kBidirectional, options);
  // If any found answers, the best scores must agree (same answer model).
  if (!mi.answers.empty() && !si.answers.empty() && !bd.answers.empty()) {
    EXPECT_NEAR(mi.answers[0].score, si.answers[0].score, 1e-6);
    EXPECT_NEAR(si.answers[0].score, bd.answers[0].score, 1e-6);
  } else {
    EXPECT_EQ(mi.answers.empty(), si.answers.empty());
    EXPECT_EQ(si.answers.empty(), bd.answers.empty());
  }
}

TEST_F(EngineTest, NodeLabelLookup) {
  EXPECT_NE(engine_->NodeLabel(0).find("conference"), std::string::npos);
  EXPECT_EQ(engine_->NodeLabel(static_cast<NodeId>(1u << 30)), "<node>");
}

TEST_F(EngineTest, DescribeAnswerMentionsNodes) {
  SearchResult r =
      engine_->Query({"author"}, Algorithm::kBackwardSI, SearchOptions{});
  ASSERT_FALSE(r.answers.empty());
  std::string desc = engine_->DescribeAnswer(r.answers[0]);
  EXPECT_NE(desc.find("root:"), std::string::npos);
  EXPECT_NE(desc.find("keyword 0"), std::string::npos);
}

TEST(EngineOptionsTest, UniformPrestigeWhenDisabled) {
  DblpConfig config;
  config.num_authors = 30;
  config.num_papers = 50;
  Database db = GenerateDblp(config);
  EngineOptions options;
  options.compute_prestige = false;
  Engine e = Engine::FromDatabase(db, options);
  for (double p : e.prestige()) EXPECT_DOUBLE_EQ(p, 1.0);
}

}  // namespace
}  // namespace banks
