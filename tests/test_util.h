#ifndef BANKS_TESTS_TEST_UTIL_H_
#define BANKS_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/graph.h"
#include "search/answer.h"
#include "search/searcher.h"

namespace banks::testing {

/// Builds the example graph of Figure 4 of the paper:
///   node 0            — paper #100 ("Database paper" root)
///   nodes 1, 2        — authors #101 (James) and #102 (John)
///   nodes 3..50       — Writes tuples #103..#150; node 3 links the
///                       root paper to John, node 4 links it to James
///                       ... wait — see the .cc for the exact wiring.
///
/// Layout (returned ids):
///   root_paper, james, john, writes_james_root, writes_john_root,
///   other papers and their writes links to john, database papers.
/// The structure reproduces the paper's counts: "Database" matches 100
/// papers, "James"/"John" match one author each; John has authored 48
/// papers (large fan-in); the desired answer is rooted at the root
/// paper.
struct Fig4Graph {
  Graph graph;
  NodeId root_paper;               // #100
  NodeId james;                    // #101
  NodeId john;                     // #102
  std::vector<NodeId> database_papers;  // #1..#100 (includes root_paper)
  std::vector<NodeId> writes_nodes;
};

Fig4Graph MakeFig4Graph();

/// Simple path graph 0→1→2→...→(n-1) with unit weights.
Graph MakePathGraph(size_t n, bool backward_edges = true);

/// Star: center node 0, leaves 1..n, edges leaf→center (leaves reference
/// the hub, like papers referencing a conference).
Graph MakeStarGraph(size_t leaves, bool backward_edges = true);

/// Deterministic pseudo-random DAG-ish graph for property tests.
Graph MakeRandomGraph(size_t nodes, size_t edges, uint64_t seed,
                      bool backward_edges = true);

/// Convenience: run an algorithm over explicit origins with uniform
/// prestige.
SearchResult RunSearch(Algorithm algorithm, const Graph& graph,
                       const std::vector<std::vector<NodeId>>& origins,
                       const SearchOptions& options = {});

/// Asserts structural validity of every answer in a result; returns the
/// first error string (empty if all valid).
std::string ValidateAnswers(const Graph& graph, const SearchResult& result);

/// True if every answer's score is non-increasing in output order.
bool ScoresNonIncreasing(const SearchResult& result);

}  // namespace banks::testing

#endif  // BANKS_TESTS_TEST_UTIL_H_
