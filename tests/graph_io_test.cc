#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace banks {
namespace {

void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v)) << "node " << v;
    auto ea = a.OutEdges(v);
    auto eb = b.OutEdges(v);
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].other, eb[i].other);
      EXPECT_FLOAT_EQ(ea[i].weight, eb[i].weight);
      EXPECT_EQ(ea[i].dir, eb[i].dir);
    }
    EXPECT_EQ(a.Type(v), b.Type(v));
  }
}

TEST(GraphIO, RoundTripUntyped) {
  Graph g = testing::MakeRandomGraph(60, 240, 21);
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, ss));
  auto loaded = LoadGraph(ss);
  ASSERT_TRUE(loaded.has_value());
  ExpectGraphsEqual(g, *loaded);
}

TEST(GraphIO, RoundTripTyped) {
  testing::Fig4Graph fig = testing::MakeFig4Graph();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(fig.graph, ss));
  auto loaded = LoadGraph(ss);
  ASSERT_TRUE(loaded.has_value());
  ExpectGraphsEqual(fig.graph, *loaded);
  EXPECT_EQ(loaded->type_names(), fig.graph.type_names());
}

TEST(GraphIO, RoundTripEmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, ss));
  auto loaded = LoadGraph(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), 0u);
}

TEST(GraphIO, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a graph file at all";
  EXPECT_FALSE(LoadGraph(ss).has_value());
}

TEST(GraphIO, RejectsTruncatedFile) {
  Graph g = testing::MakeRandomGraph(10, 30, 1);
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, ss));
  std::string data = ss.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  EXPECT_FALSE(LoadGraph(truncated).has_value());
}

TEST(GraphIO, RejectsEmptyStream) {
  std::stringstream ss;
  EXPECT_FALSE(LoadGraph(ss).has_value());
}

TEST(GraphIO, BackwardEdgesRederivedWithNewOptions) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1);
  Graph g = b.Build();  // default: backward edges on
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, ss));
  GraphBuildOptions options;
  options.add_backward_edges = false;
  auto loaded = LoadGraph(ss, options);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 1u);  // only the forward edge persists
}

TEST(GraphIO, FileRoundTrip) {
  Graph g = testing::MakeRandomGraph(30, 90, 77);
  std::string path = ::testing::TempDir() + "/banks_graph_io_test.bin";
  ASSERT_TRUE(SaveGraphToFile(g, path));
  auto loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectGraphsEqual(g, *loaded);
  EXPECT_FALSE(LoadGraphFromFile(path + ".missing").has_value());
}

}  // namespace
}  // namespace banks
