#include "serve/timer_wheel.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace banks {
namespace {

/// Drives AdvanceTo in fine steps and returns the `now` at which `id`
/// first fired (-1 if it never did before `until`).
double DriveUntilFired(TimerWheel* wheel, uint64_t id, double until,
                       double step) {
  std::vector<uint64_t> fired;
  for (double now = 0; now <= until; now += step) {
    fired.clear();
    wheel->AdvanceTo(now, &fired);
    for (uint64_t f : fired) {
      if (f == id) return now;
    }
  }
  return -1;
}

// The satellite requirement: expiry latency is bounded by one tick. A
// timer must never fire before its deadline, and must have fired by the
// first advance past deadline + tick.
TEST(TimerWheel, ExpiryLatencyBoundedByOneTick) {
  const double kTick = 1e-3;
  TimerWheel wheel(kTick, 64);
  const double deadline = 0.0123;  // mid-tick on purpose
  wheel.Schedule(1, deadline);
  const double step = kTick / 10;
  double fired_at = DriveUntilFired(&wheel, 1, 0.05, step);
  ASSERT_GE(fired_at, 0) << "timer never fired";
  EXPECT_GE(fired_at, deadline) << "fired before its deadline";
  // Fire boundary is ceil(d/tick)*tick, so the wheel's own latency is
  // < one tick (the driver adds at most one step of its own cadence).
  EXPECT_LE(fired_at, deadline + kTick + step);
}

TEST(TimerWheel, ExpiryLatencyBoundHoldsAcrossRandomDeadlines) {
  const double kTick = 1e-3;
  TimerWheel wheel(kTick, 32);  // small ring: forces wrap + overflow
  Rng rng(99);
  struct Armed {
    uint64_t id;
    double deadline;
  };
  std::vector<Armed> armed;
  for (uint64_t id = 1; id <= 200; ++id) {
    double deadline = static_cast<double>(rng.Below(100'000)) * 1e-6;
    wheel.Schedule(id, deadline);
    armed.push_back({id, deadline});
  }
  const double step = kTick / 4;
  std::vector<double> fired_at(201, -1);
  std::vector<uint64_t> fired;
  for (double now = 0; now <= 0.11; now += step) {
    fired.clear();
    wheel.AdvanceTo(now, &fired);
    for (uint64_t f : fired) {
      ASSERT_LT(fired_at[f], 0) << "timer " << f << " fired twice";
      fired_at[f] = now;
    }
  }
  for (const Armed& a : armed) {
    ASSERT_GE(fired_at[a.id], 0) << "timer " << a.id << " never fired";
    EXPECT_GE(fired_at[a.id], a.deadline);
    EXPECT_LE(fired_at[a.id], a.deadline + kTick + step);
  }
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, DeadlineOnTickBoundaryFiresAtThatBoundary) {
  TimerWheel wheel(1e-3, 64);
  wheel.Schedule(1, 0.005);  // exactly tick 5
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(0.00499, &fired);
  EXPECT_TRUE(fired.empty());
  wheel.AdvanceTo(0.005, &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
}

TEST(TimerWheel, CancelPreventsFire) {
  TimerWheel wheel(1e-3, 64);
  wheel.Schedule(1, 0.002);
  wheel.Schedule(2, 0.002);
  wheel.Cancel(1);
  EXPECT_EQ(wheel.armed(), 1u);
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(0.01, &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2u);
}

TEST(TimerWheel, RearmReplacesDeadline) {
  TimerWheel wheel(1e-3, 64);
  wheel.Schedule(1, 0.002);
  wheel.Schedule(1, 0.009);  // re-arm later: old arming must not fire
  EXPECT_EQ(wheel.armed(), 1u);
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(0.005, &fired);
  EXPECT_TRUE(fired.empty());
  wheel.AdvanceTo(0.02, &fired);
  ASSERT_EQ(fired.size(), 1u) << "stale slot entry fired";
  EXPECT_EQ(fired[0], 1u);
}

TEST(TimerWheel, OverflowBeyondHorizonStillFires) {
  TimerWheel wheel(1e-3, 8);  // horizon: 8ms
  wheel.Schedule(1, 0.050);   // 50 ticks out — overflow territory
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(0.049, &fired);
  EXPECT_TRUE(fired.empty());
  wheel.AdvanceTo(0.051, &fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
}

TEST(TimerWheel, SameTickFiresInArmingOrder) {
  TimerWheel wheel(1e-3, 64);
  wheel.Schedule(30, 0.0042);
  wheel.Schedule(10, 0.0045);
  wheel.Schedule(20, 0.0049);  // all land on tick 5
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(0.1, &fired);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 30u);
  EXPECT_EQ(fired[1], 10u);
  EXPECT_EQ(fired[2], 20u);
}

TEST(TimerWheel, NextFireTimeIsTheBoundaryNotTheDeadline) {
  const double kTick = 1e-3;
  TimerWheel wheel(kTick, 64);
  EXPECT_EQ(wheel.NextFireTime(), 0);
  const double deadline = 0.0071;
  wheel.Schedule(1, deadline);
  double next = wheel.NextFireTime();
  // Sleeping until `next` must land at (or past) the fire boundary, so
  // a driver waking there fires the timer instead of spinning.
  EXPECT_GE(next, deadline);
  EXPECT_LT(next, deadline + kTick);
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(next, &fired);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_EQ(wheel.NextFireTime(), 0);
}

TEST(TimerWheel, PastDeadlineFiresWithinOneTickOfArming) {
  const double kTick = 1e-3;
  TimerWheel wheel(kTick, 64);
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(0.05, &fired);  // move the cursor well forward
  wheel.Schedule(1, 0.010);       // already in the past
  // A past deadline is clamped to the next unprocessed tick, so it
  // fires at the first advance that crosses a tick boundary — within
  // one tick of arming, never silently dropped.
  double fired_at = DriveUntilFired(&wheel, 1, 0.06, kTick / 10);
  ASSERT_GE(fired_at, 0) << "past-deadline timer never fired";
  EXPECT_LE(fired_at, 0.05 + kTick + kTick / 10);
}

TEST(TimerWheel, ManyTimersAcrossManyLapsAllFireOnce) {
  const double kTick = 1e-3;
  TimerWheel wheel(kTick, 16);  // 16ms horizon, deadlines up to 200ms
  std::vector<int> count(501, 0);
  for (uint64_t id = 1; id <= 500; ++id) {
    wheel.Schedule(id, static_cast<double>(id) * 0.0004);
  }
  std::vector<uint64_t> fired;
  for (double now = 0; now <= 0.25; now += 0.002) {
    fired.clear();
    wheel.AdvanceTo(now, &fired);
    for (uint64_t f : fired) count[f]++;
  }
  for (uint64_t id = 1; id <= 500; ++id) {
    EXPECT_EQ(count[id], 1) << "timer " << id;
  }
  EXPECT_EQ(wheel.armed(), 0u);
}

}  // namespace
}  // namespace banks
