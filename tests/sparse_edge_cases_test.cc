// Failure-injection and edge-case coverage for the Sparse baseline and
// the workload generator: empty tables, null FKs, keyword-free tables,
// unsatisfiable category constraints.

#include <gtest/gtest.h>

#include "datasets/workload.h"
#include "relational/graph_builder.h"
#include "relational/sparse.h"

namespace banks {
namespace {

Database MakeDbWithNulls() {
  Database db;
  Table& dept = db.AddTable(
      TableSpec{"dept", {ColumnSpec{"name", ColumnKind::kText, "", 1.0}}});
  Table& person = db.AddTable(TableSpec{
      "person",
      {ColumnSpec{"name", ColumnKind::kText, "", 1.0},
       ColumnSpec{"dept", ColumnKind::kForeignKey, "dept", 1.0}}});
  dept.AddRow({"engineering"}, {});
  person.AddRow({"ada"}, {0});
  person.AddRow({"grace"}, {kNullRow});  // no department
  db.BuildIndexes();
  return db;
}

TEST(SparseEdgeCases, NullForeignKeysSkipped) {
  Database db = MakeDbWithNulls();
  SparseSearcher sparse(&db);
  SparseSearcher::Options options;
  options.max_cn_size = 2;
  // ada—dept joins; grace has no dept so "grace engineering" at size 2
  // yields nothing.
  auto r = sparse.Search({"ada", "engineering"}, options);
  EXPECT_FALSE(r.results.empty());
  r = sparse.Search({"grace", "engineering"}, options);
  EXPECT_TRUE(r.results.empty());
}

TEST(SparseEdgeCases, NullFkProducesNoGraphEdge) {
  Database db = MakeDbWithNulls();
  DataGraph dg = BuildDataGraph(db);
  NodeId grace = dg.NodeFor(db.TableIndex("person"), 1);
  EXPECT_EQ(dg.graph.OutDegree(grace), 0u);
  NodeId ada = dg.NodeFor(db.TableIndex("person"), 0);
  EXPECT_EQ(dg.graph.OutDegree(ada), 1u);
}

TEST(SparseEdgeCases, EmptyDatabase) {
  Database db;
  db.AddTable(
      TableSpec{"empty", {ColumnSpec{"t", ColumnKind::kText, "", 1.0}}});
  db.BuildIndexes();
  SparseSearcher sparse(&db);
  auto r = sparse.Search({"anything"}, SparseSearcher::Options{});
  EXPECT_TRUE(r.results.empty());
  EXPECT_TRUE(r.networks.empty());

  DataGraph dg = BuildDataGraph(db);
  EXPECT_EQ(dg.graph.num_nodes(), 0u);
}

TEST(SparseEdgeCases, NoKeywordsYieldNothing) {
  Database db = MakeDbWithNulls();
  SparseSearcher sparse(&db);
  auto r = sparse.Search({}, SparseSearcher::Options{});
  EXPECT_TRUE(r.results.empty());
}

TEST(WorkloadEdgeCases, UnsatisfiableCategoriesProduceEmptyWorkload) {
  Database db = MakeDbWithNulls();
  DataGraph dg = BuildDataGraph(db);
  WorkloadGenerator gen(&db, &dg);
  WorkloadOptions options;
  options.num_queries = 3;
  options.answer_size = 2;
  options.max_attempts_per_query = 30;
  // Nothing in this 3-row database matches a "large" keyword.
  options.thresholds.large_min = 1000;
  options.categories = {FreqCategory::kLarge, FreqCategory::kLarge};
  EXPECT_TRUE(gen.Generate(options).empty());
}

TEST(WorkloadEdgeCases, TreeLargerThanDatabaseFails) {
  Database db = MakeDbWithNulls();
  DataGraph dg = BuildDataGraph(db);
  WorkloadGenerator gen(&db, &dg);
  WorkloadOptions options;
  options.num_queries = 1;
  options.answer_size = 10;  // only 3 rows exist
  options.max_attempts_per_query = 20;
  EXPECT_TRUE(gen.Generate(options).empty());
}

TEST(WorkloadEdgeCases, TinyDatabaseStillGenerates) {
  Database db = MakeDbWithNulls();
  DataGraph dg = BuildDataGraph(db);
  WorkloadGenerator gen(&db, &dg);
  WorkloadOptions options;
  options.num_queries = 1;
  options.answer_size = 2;
  options.min_keywords = 2;
  options.max_keywords = 2;
  options.seed = 5;
  auto queries = gen.Generate(options);
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].keywords.size(), 2u);
  EXPECT_FALSE(queries[0].relevant.empty());
}

}  // namespace
}  // namespace banks
