#include "search/answer.h"

#include <gtest/gtest.h>

#include "search/output_heap.h"
#include "search/scoring.h"
#include "test_util.h"

namespace banks {
namespace {

AnswerTree MakeTree(NodeId root, std::vector<AnswerEdge> edges,
                    std::vector<NodeId> keyword_nodes,
                    std::vector<double> dists) {
  AnswerTree t;
  t.root = root;
  t.edges = std::move(edges);
  t.keyword_nodes = std::move(keyword_nodes);
  t.keyword_distances = std::move(dists);
  return t;
}

// -------------------------------------------------------------- Nodes --

TEST(AnswerTree, NodesCollectsAllEndpoints) {
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}, {0, 2, 1.0f}}, {1, 2}, {1, 1});
  auto nodes = t.Nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 0u);
  EXPECT_EQ(nodes[2], 2u);
}

TEST(AnswerTree, SingleNodeTree) {
  AnswerTree t = MakeTree(7, {}, {7}, {0});
  EXPECT_EQ(t.Nodes().size(), 1u);
  EXPECT_EQ(t.RootChildCount(), 0u);
  EXPECT_TRUE(t.RootMatchesAKeyword());
  EXPECT_TRUE(t.IsMinimalRooted());
}

// ------------------------------------------------------ Minimal root --

TEST(AnswerTree, SingleChildChainIsNotMinimal) {
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}, {1, 2, 1.0f}}, {1, 2}, {1, 2});
  EXPECT_EQ(t.RootChildCount(), 1u);
  EXPECT_FALSE(t.RootMatchesAKeyword());
  EXPECT_FALSE(t.IsMinimalRooted());
}

TEST(AnswerTree, SingleChildWithKeywordAtRootIsMinimal) {
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}}, {0, 1}, {0, 1});
  EXPECT_TRUE(t.RootMatchesAKeyword());
  EXPECT_TRUE(t.IsMinimalRooted());
}

TEST(AnswerTree, TwoChildrenIsMinimal) {
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}, {0, 2, 1.0f}}, {1, 2}, {1, 1});
  EXPECT_EQ(t.RootChildCount(), 2u);
  EXPECT_TRUE(t.IsMinimalRooted());
}

// ---------------------------------------------------------- Signature --

TEST(AnswerTree, RotationsShareSignature) {
  // Same undirected tree {0-1}, rooted at 0 vs rooted at 1 (§4.6).
  AnswerTree a = MakeTree(0, {{0, 1, 1.0f}}, {0, 1}, {0, 1});
  AnswerTree b = MakeTree(1, {{1, 0, 1.0f}}, {0, 1}, {1, 0});
  EXPECT_EQ(a.Signature(), b.Signature());
}

TEST(AnswerTree, DifferentNodeSetsDiffer) {
  AnswerTree a = MakeTree(0, {{0, 1, 1.0f}}, {0, 1}, {0, 1});
  AnswerTree b = MakeTree(0, {{0, 2, 1.0f}}, {0, 2}, {0, 1});
  EXPECT_NE(a.Signature(), b.Signature());
}

TEST(AnswerTree, DifferentShapeSameNodesDiffer) {
  AnswerTree a =
      MakeTree(0, {{0, 1, 1.0f}, {1, 2, 1.0f}}, {1, 2}, {1, 2});
  AnswerTree b =
      MakeTree(0, {{0, 1, 1.0f}, {0, 2, 1.0f}}, {1, 2}, {1, 1});
  EXPECT_NE(a.Signature(), b.Signature());
}

// ----------------------------------------------------------- Validate --

TEST(AnswerTree, ValidateAcceptsRealTree) {
  Graph g = testing::MakePathGraph(4);
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}, {1, 2, 1.0f}}, {2}, {2});
  std::string error;
  EXPECT_TRUE(t.Validate(g, &error)) << error;
}

TEST(AnswerTree, ValidateRejectsMissingEdge) {
  Graph g = testing::MakePathGraph(4);
  AnswerTree t = MakeTree(0, {{0, 3, 1.0f}}, {3}, {1});
  EXPECT_FALSE(t.Validate(g));
}

TEST(AnswerTree, ValidateRejectsTwoParents) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  AnswerTree t =
      MakeTree(0, {{0, 2, 1.0f}, {1, 2, 1.0f}, {0, 1, 1.0f}}, {2}, {1});
  std::string error;
  EXPECT_FALSE(t.Validate(g, &error));
  EXPECT_NE(error.find("two parents"), std::string::npos);
}

TEST(AnswerTree, ValidateRejectsKeywordOutsideTree) {
  Graph g = testing::MakePathGraph(4);
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}}, {3}, {1});
  EXPECT_FALSE(t.Validate(g));
}

TEST(AnswerTree, ValidateRejectsRootWithParent) {
  Graph g = testing::MakePathGraph(4);
  AnswerTree t = MakeTree(1, {{0, 1, 1.0f}, {1, 2, 1.0f}}, {2}, {1});
  EXPECT_FALSE(t.Validate(g));
}

// ------------------------------------------------------------ Scoring --

TEST(Scoring, EdgeScoreDecreasesWithRawScore) {
  EXPECT_DOUBLE_EQ(EdgeScoreFromRaw(0), 1.0);
  EXPECT_GT(EdgeScoreFromRaw(1), EdgeScoreFromRaw(2));
}

TEST(Scoring, TreePrestigeAveragesRootAndLeaves) {
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}, {0, 2, 1.0f}}, {1, 2}, {1, 1});
  std::vector<double> prestige = {0.9, 0.6, 0.3};
  EXPECT_NEAR(TreePrestige(t, prestige), (0.9 + 0.6 + 0.3) / 3.0, 1e-12);
}

TEST(Scoring, LambdaZeroIgnoresPrestige) {
  EXPECT_DOUBLE_EQ(CombineScore(0.5, 0.1, 0.0), 0.5);
}

TEST(Scoring, LambdaWeightsPrestige) {
  double with_high = CombineScore(0.5, 1.0, 0.2);
  double with_low = CombineScore(0.5, 0.1, 0.2);
  EXPECT_GT(with_high, with_low);
}

TEST(Scoring, ScoreTreeFillsAllComponents) {
  AnswerTree t = MakeTree(0, {{0, 1, 1.0f}, {0, 2, 2.0f}}, {1, 2}, {1, 2});
  std::vector<double> prestige = {1.0, 1.0, 1.0};
  ScoreTree(&t, prestige, 0.2);
  EXPECT_DOUBLE_EQ(t.edge_score_raw, 3.0);
  EXPECT_DOUBLE_EQ(t.node_prestige, 1.0);
  EXPECT_NEAR(t.score, 0.25, 1e-12);
}

TEST(Scoring, UpperBoundMonotoneInEraw) {
  EXPECT_GE(ScoreUpperBound(1, 1, 0.2), ScoreUpperBound(2, 1, 0.2));
  EXPECT_DOUBLE_EQ(ScoreUpperBound(0, 1, 0.2), 1.0);
}

// -------------------------------------------------------- OutputHeap --

AnswerTree ScoredTree(NodeId root, double score, double eraw) {
  AnswerTree t = MakeTree(root, {}, {root}, {0});
  t.score = score;
  t.edge_score_raw = eraw;
  return t;
}

TEST(OutputHeap, ReleasesOnlyAboveBound) {
  OutputHeap heap;
  heap.Insert(ScoredTree(1, 0.9, 1));
  heap.Insert(ScoredTree(2, 0.5, 2));
  std::vector<AnswerTree> out;
  heap.ReleaseWithScoreBound(0.7, 10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].root, 1u);
  EXPECT_EQ(heap.pending_count(), 1u);
}

TEST(OutputHeap, ReleaseSortsByScore) {
  OutputHeap heap;
  heap.Insert(ScoredTree(1, 0.3, 1));
  heap.Insert(ScoredTree(2, 0.9, 1));
  heap.Insert(ScoredTree(3, 0.6, 1));
  std::vector<AnswerTree> out;
  heap.Drain(10, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].root, 2u);
  EXPECT_EQ(out[1].root, 3u);
  EXPECT_EQ(out[2].root, 1u);
}

TEST(OutputHeap, RespectsLimit) {
  OutputHeap heap;
  for (NodeId r = 0; r < 10; ++r) heap.Insert(ScoredTree(r, 0.1 * r, 1));
  std::vector<AnswerTree> out;
  heap.Drain(4, &out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(heap.pending_count(), 6u);
}

TEST(OutputHeap, DuplicateKeepsBetterScore) {
  OutputHeap heap;
  EXPECT_TRUE(heap.Insert(ScoredTree(1, 0.5, 2)));
  EXPECT_FALSE(heap.Insert(ScoredTree(1, 0.4, 3)));  // worse duplicate
  EXPECT_TRUE(heap.Insert(ScoredTree(1, 0.8, 1)));   // better duplicate
  std::vector<AnswerTree> out;
  heap.Drain(10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].score, 0.8);
}

TEST(OutputHeap, AlreadyOutputDuplicatesDropped) {
  OutputHeap heap;
  heap.Insert(ScoredTree(1, 0.5, 2));
  std::vector<AnswerTree> out;
  heap.Drain(10, &out);
  EXPECT_FALSE(heap.Insert(ScoredTree(1, 0.9, 1)));
  EXPECT_EQ(heap.pending_count(), 0u);
}

TEST(OutputHeap, EdgeBoundReleasesByEraw) {
  OutputHeap heap;
  heap.Insert(ScoredTree(1, 0.2, 5));
  heap.Insert(ScoredTree(2, 0.9, 10));
  std::vector<AnswerTree> out;
  heap.ReleaseWithEdgeBound(6, 10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].root, 1u);  // low score but small edge score releases
}

TEST(OutputHeap, BestPendingScore) {
  OutputHeap heap;
  EXPECT_DOUBLE_EQ(heap.BestPendingScore(), -1);
  heap.Insert(ScoredTree(1, 0.4, 1));
  heap.Insert(ScoredTree(2, 0.7, 1));
  EXPECT_DOUBLE_EQ(heap.BestPendingScore(), 0.7);
}

}  // namespace
}  // namespace banks
