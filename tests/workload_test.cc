#include "datasets/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/dblp_gen.h"
#include "relational/graph_builder.h"

namespace banks {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpConfig config;
    config.num_authors = 300;
    config.num_papers = 600;
    config.num_conferences = 20;
    db_ = new Database(GenerateDblp(config));
    dg_ = new DataGraph(BuildDataGraph(*db_));
  }
  static void TearDownTestSuite() {
    delete dg_;
    delete db_;
  }
  static Database* db_;
  static DataGraph* dg_;
};

Database* WorkloadTest::db_ = nullptr;
DataGraph* WorkloadTest::dg_ = nullptr;

TEST_F(WorkloadTest, GeneratesRequestedQueryCount) {
  WorkloadGenerator gen(db_, dg_);
  WorkloadOptions options;
  options.num_queries = 10;
  options.answer_size = 3;
  options.min_keywords = 2;
  options.max_keywords = 3;
  options.seed = 7;
  auto queries = gen.Generate(options);
  EXPECT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_GE(q.keywords.size(), 2u);
    EXPECT_LE(q.keywords.size(), 3u);
    EXPECT_EQ(q.origin_sizes.size(), q.keywords.size());
    EXPECT_EQ(q.generating_tree_nodes.size(), 3u);
    EXPECT_FALSE(q.relevant.empty());
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  WorkloadGenerator gen(db_, dg_);
  WorkloadOptions options;
  options.num_queries = 5;
  options.answer_size = 3;
  options.seed = 42;
  auto a = gen.Generate(options);
  auto b = gen.Generate(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  }
}

TEST_F(WorkloadTest, KeywordsActuallyMatchOriginSizes) {
  WorkloadGenerator gen(db_, dg_);
  WorkloadOptions options;
  options.num_queries = 8;
  options.answer_size = 4;
  options.seed = 3;
  for (const auto& q : gen.Generate(options)) {
    for (size_t i = 0; i < q.keywords.size(); ++i) {
      EXPECT_EQ(dg_->index.MatchCount(q.keywords[i]), q.origin_sizes[i]);
      EXPECT_GE(q.origin_sizes[i], 1u);
    }
  }
}

TEST_F(WorkloadTest, GeneratingTreeIsAmongRelevantAnswers) {
  WorkloadGenerator gen(db_, dg_);
  WorkloadOptions options;
  options.num_queries = 10;
  options.answer_size = 3;
  options.seed = 11;
  for (const auto& q : gen.Generate(options)) {
    bool found = std::find(q.relevant.begin(), q.relevant.end(),
                           q.generating_tree_nodes) != q.relevant.end();
    EXPECT_TRUE(found)
        << "the generating join tree must be in its own relevant set";
  }
}

TEST_F(WorkloadTest, RelevantSetsAreSortedUniqueNodeSets) {
  WorkloadGenerator gen(db_, dg_);
  WorkloadOptions options;
  options.num_queries = 6;
  options.answer_size = 4;
  options.seed = 17;
  for (const auto& q : gen.Generate(options)) {
    for (const auto& nodes : q.relevant) {
      EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
      EXPECT_EQ(std::adjacent_find(nodes.begin(), nodes.end()), nodes.end());
      for (NodeId v : nodes) EXPECT_LT(v, dg_->graph.num_nodes());
    }
  }
}

TEST_F(WorkloadTest, CategoryConstraintsRespected) {
  WorkloadGenerator gen(db_, dg_);
  WorkloadOptions options;
  options.num_queries = 5;
  options.answer_size = 3;
  options.seed = 23;
  // Thresholds scaled for the small test dataset (max df is ~150 here).
  options.thresholds.tiny_max = 10;
  options.thresholds.small_min = 11;
  options.thresholds.small_max = 30;
  options.thresholds.medium_min = 31;
  options.thresholds.medium_max = 60;
  options.thresholds.large_min = 61;
  options.categories = {FreqCategory::kTiny, FreqCategory::kTiny,
                        FreqCategory::kLarge};
  auto queries = gen.Generate(options);
  for (const auto& q : queries) {
    ASSERT_EQ(q.keywords.size(), 3u);
    EXPECT_LE(q.origin_sizes[0], 10u);
    EXPECT_LE(q.origin_sizes[1], 10u);
    EXPECT_GE(q.origin_sizes[2], 61u);
  }
  // The DBLP titles are Zipf-skewed, so this combination is satisfiable.
  EXPECT_FALSE(queries.empty());
}

TEST(FreqThresholds, CategorizeAndMatch) {
  FreqThresholds t;
  t.tiny_max = 10;
  t.small_min = 20;
  t.small_max = 30;
  t.medium_min = 40;
  t.medium_max = 50;
  t.large_min = 60;
  EXPECT_EQ(t.Categorize(5), FreqCategory::kTiny);
  EXPECT_EQ(t.Categorize(25), FreqCategory::kSmall);
  EXPECT_EQ(t.Categorize(45), FreqCategory::kMedium);
  EXPECT_EQ(t.Categorize(100), FreqCategory::kLarge);
  EXPECT_EQ(t.Categorize(15), FreqCategory::kAny);  // between bands
  EXPECT_TRUE(t.Matches(FreqCategory::kAny, 15));
  EXPECT_FALSE(t.Matches(FreqCategory::kAny, 0));
  EXPECT_TRUE(t.Matches(FreqCategory::kLarge, 60));
  EXPECT_FALSE(t.Matches(FreqCategory::kLarge, 59));
}

TEST(FreqCategoryLetter, Letters) {
  EXPECT_EQ(FreqCategoryLetter(FreqCategory::kTiny), 'T');
  EXPECT_EQ(FreqCategoryLetter(FreqCategory::kSmall), 'S');
  EXPECT_EQ(FreqCategoryLetter(FreqCategory::kMedium), 'M');
  EXPECT_EQ(FreqCategoryLetter(FreqCategory::kLarge), 'L');
  EXPECT_EQ(FreqCategoryLetter(FreqCategory::kAny), '*');
}

}  // namespace
}  // namespace banks
