// Pooled-reuse contract of the OutputHeap and the Backward-MI frontier
// pool: a warm (recycled) buffer must behave byte-identically to a
// fresh one, and the warm path must not grow the pools.

#include "search/output_heap.h"

#include <gtest/gtest.h>

#include <vector>

#include "search/search_context.h"
#include "search/searcher.h"
#include "test_util.h"
#include "util/rng.h"

namespace banks {
namespace {

using testing::MakeFig4Graph;
using testing::MakeRandomGraph;

AnswerTree ScoredTree(NodeId root, double score, double eraw) {
  AnswerTree t;
  t.root = root;
  t.keyword_nodes = {root};
  t.keyword_distances = {0};
  t.score = score;
  t.edge_score_raw = eraw;
  return t;
}

/// One scripted round of Insert / partial releases / Drain, returning
/// every observable the heap exposes along the way.
struct RoundLog {
  std::vector<bool> insert_results;
  std::vector<AnswerTree> released;
  std::vector<size_t> pending_counts;
  std::vector<double> best_scores;
};

RoundLog RunSequence(OutputHeap* heap, uint64_t salt) {
  RoundLog log;
  auto observe = [&] {
    log.pending_counts.push_back(heap->pending_count());
    log.best_scores.push_back(heap->BestPendingScore());
  };
  // Roots vary with `salt` so different rounds buffer different trees.
  for (NodeId r = 0; r < 12; ++r) {
    NodeId root = r + static_cast<NodeId>(salt) * 100;
    log.insert_results.push_back(
        heap->Insert(ScoredTree(root, 0.05 * (r % 7) + 0.1, 10.0 - r)));
  }
  // Duplicates: worse (dropped), better (kept).
  log.insert_results.push_back(heap->Insert(
      ScoredTree(static_cast<NodeId>(salt) * 100, 0.01, 20)));
  log.insert_results.push_back(heap->Insert(
      ScoredTree(static_cast<NodeId>(salt) * 100, 0.95, 1)));
  observe();
  heap->ReleaseWithScoreBound(0.3, 100, &log.released);
  observe();
  heap->ReleaseWithEdgeBound(5.0, 100, &log.released);
  observe();
  // Re-insert an already released signature: must be dropped.
  log.insert_results.push_back(heap->Insert(
      ScoredTree(static_cast<NodeId>(salt) * 100, 0.99, 1)));
  heap->ReleaseBest(2, 100, &log.released);
  observe();
  heap->Drain(100, &log.released);
  observe();
  return log;
}

void ExpectSameLog(const RoundLog& a, const RoundLog& b) {
  EXPECT_EQ(a.insert_results, b.insert_results);
  EXPECT_EQ(a.pending_counts, b.pending_counts);
  EXPECT_EQ(a.best_scores, b.best_scores);
  ASSERT_EQ(a.released.size(), b.released.size());
  for (size_t i = 0; i < a.released.size(); ++i) {
    EXPECT_TRUE(SameAnswer(a.released[i], b.released[i])) << i;
  }
}

TEST(OutputHeapPooling, WarmHeapMatchesFreshAcrossSequences) {
  OutputHeap warm;
  for (uint64_t round = 0; round < 5; ++round) {
    warm.Reset();
    OutputHeap fresh;
    RoundLog warm_log = RunSequence(&warm, round);
    RoundLog fresh_log = RunSequence(&fresh, round);
    ExpectSameLog(warm_log, fresh_log);
  }
}

TEST(OutputHeapPooling, ResetForgetsReleasedSignatures) {
  OutputHeap heap;
  ASSERT_TRUE(heap.Insert(ScoredTree(7, 0.5, 1)));
  std::vector<AnswerTree> out;
  heap.Drain(10, &out);
  EXPECT_FALSE(heap.Insert(ScoredTree(7, 0.9, 1)));  // released is final
  heap.Reset();
  EXPECT_EQ(heap.pending_count(), 0u);
  EXPECT_TRUE(heap.Insert(ScoredTree(7, 0.9, 1)));  // new query, new life
  EXPECT_EQ(heap.pending_count(), 1u);
}

TEST(OutputHeapPooling, InsertCopyMatchesInsertAndKeepsScratchIntact) {
  OutputHeap by_move;
  OutputHeap by_copy;
  AnswerTree scratch;
  for (NodeId r = 0; r < 8; ++r) {
    AnswerTree t = ScoredTree(r % 5, 0.1 * r, 8.0 - r);
    scratch = t;
    EXPECT_EQ(by_move.Insert(t), by_copy.InsertCopy(scratch));
    // The scratch stays usable after a rejected or accepted copy.
    EXPECT_EQ(scratch.root, r % 5);
    EXPECT_EQ(scratch.keyword_nodes.size(), 1u);
  }
  std::vector<AnswerTree> move_out;
  std::vector<AnswerTree> copy_out;
  by_move.Drain(100, &move_out);
  by_copy.Drain(100, &copy_out);
  ASSERT_EQ(move_out.size(), copy_out.size());
  for (size_t i = 0; i < move_out.size(); ++i) {
    EXPECT_TRUE(SameAnswer(move_out[i], copy_out[i])) << i;
  }
}

// ---- Backward-MI frontier pool ---------------------------------------------

TEST(FrontierPool, SegmentsClearButKeepCapacity) {
  FrontierPool pool;
  pool.EnsureSegments(3);
  EXPECT_EQ(pool.segment_count(), 3u);
  for (int i = 0; i < 50; ++i) pool.Segment(1).emplace_back(1.0 * i, i);
  size_t capacity = pool.TotalCapacity();
  EXPECT_GE(capacity, 50u);
  pool.Clear();
  EXPECT_TRUE(pool.Segment(1).empty());
  EXPECT_EQ(pool.TotalCapacity(), capacity);  // capacity survives Clear
  pool.EnsureSegments(2);                     // never shrinks
  EXPECT_EQ(pool.segment_count(), 3u);
}

TEST(FrontierPool, WarmMIQueriesReuseFrontiersWithIdenticalAnswers) {
  testing::Fig4Graph fig = MakeFig4Graph();
  std::vector<double> prestige(fig.graph.num_nodes(), 1.0);
  SearchOptions options;
  options.k = 5;
  auto searcher = CreateSearcher(Algorithm::kBackwardMI, fig.graph, prestige,
                                 options);
  // "Database John": the frequent keyword builds ~100 MI iterators, each
  // with its own pooled frontier segment.
  std::vector<std::vector<NodeId>> origins = {fig.database_papers,
                                              {fig.john}};

  SearchContext ctx;
  SearchResult first = searcher->Search(origins, &ctx);
  ASSERT_GT(first.answers.size(), 0u);
  const size_t segments_after_first = ctx.frontiers.segment_count();
  const size_t capacity_after_first = ctx.frontiers.TotalCapacity();
  EXPECT_GE(segments_after_first, fig.database_papers.size());

  for (int round = 0; round < 3; ++round) {
    SearchResult again = searcher->Search(origins, &ctx);
    ASSERT_EQ(again.answers.size(), first.answers.size());
    for (size_t i = 0; i < first.answers.size(); ++i) {
      EXPECT_TRUE(SameAnswer(again.answers[i], first.answers[i])) << i;
    }
    // Warm path: zero pool growth — no new segments, no regrowth.
    EXPECT_EQ(ctx.frontiers.segment_count(), segments_after_first);
    EXPECT_EQ(ctx.frontiers.TotalCapacity(), capacity_after_first);
  }
}

TEST(FrontierPool, MixedQuerySizesOnOneContextStayCorrect) {
  Graph graph = MakeRandomGraph(300, 1200, 42);
  std::vector<double> prestige(graph.num_nodes(), 1.0);
  SearchOptions options;
  options.k = 4;
  auto searcher =
      CreateSearcher(Algorithm::kBackwardMI, graph, prestige, options);

  // Alternate a many-iterator query with a two-iterator one: stale
  // segments from the bigger query must never leak into the smaller.
  std::vector<std::vector<NodeId>> big = {{1, 2, 3, 4, 5, 6, 7, 8},
                                          {20, 21, 22, 23}};
  std::vector<std::vector<NodeId>> small = {{9}, {30}};
  SearchContext fresh_big_ctx;
  SearchContext fresh_small_ctx;
  SearchResult ref_big = searcher->Search(big, &fresh_big_ctx);
  SearchResult ref_small = searcher->Search(small, &fresh_small_ctx);

  SearchContext ctx;
  for (int round = 0; round < 3; ++round) {
    SearchResult b = searcher->Search(big, &ctx);
    SearchResult s = searcher->Search(small, &ctx);
    ASSERT_EQ(b.answers.size(), ref_big.answers.size());
    for (size_t i = 0; i < b.answers.size(); ++i) {
      EXPECT_TRUE(SameAnswer(b.answers[i], ref_big.answers[i])) << i;
    }
    ASSERT_EQ(s.answers.size(), ref_small.answers.size());
    for (size_t i = 0; i < s.answers.size(); ++i) {
      EXPECT_TRUE(SameAnswer(s.answers[i], ref_small.answers[i])) << i;
    }
  }
}

// ---- Merged release over shard-local heaps --------------------------------
// Property: inserting a set of trees into N heaps routed by signature
// shard (sig mod N) and releasing through the Merged* functions is
// indistinguishable — released sequences, pending counts, best pending
// scores — from inserting the union into one heap and using its member
// releases. This is the invariant the sharded searchers' release checks
// stand on.

/// Applies one release op to both the reference heap and the shard set.
struct MergedFixture {
  OutputHeap reference;
  std::vector<OutputHeap> shards;
  std::vector<AnswerTree> ref_out;
  std::vector<AnswerTree> merged_out;

  explicit MergedFixture(size_t n) : shards(n) {}

  void Insert(const AnswerTree& t) {
    uint64_t sig = t.Signature();
    bool a = reference.InsertCopy(t, sig);
    bool b = shards[sig % shards.size()].InsertCopy(t, sig);
    EXPECT_EQ(a, b);
  }

  void ExpectAggregatesMatch() {
    EXPECT_EQ(MergedPendingCount(shards.data(), shards.size()),
              reference.pending_count());
    EXPECT_EQ(MergedBestPendingScore(shards.data(), shards.size()),
              reference.BestPendingScore());
  }

  void ExpectOutputsMatch() {
    ASSERT_EQ(ref_out.size(), merged_out.size());
    for (size_t i = 0; i < ref_out.size(); ++i) {
      EXPECT_TRUE(SameAnswer(ref_out[i], merged_out[i])) << i;
    }
  }
};

TEST(OutputHeapMerge, ScriptedReleasesMatchSingleHeap) {
  MergedFixture f(3);
  for (NodeId r = 0; r < 20; ++r) {
    f.Insert(ScoredTree(r, 0.03 * (r % 9) + 0.05, 18.0 - r));
  }
  // Duplicates across the script: worse and better rotations.
  f.Insert(ScoredTree(4, 0.01, 30));
  f.Insert(ScoredTree(4, 0.93, 2));
  f.ExpectAggregatesMatch();

  f.reference.ReleaseWithScoreBound(0.2, 7, &f.ref_out);
  MergedReleaseWithScoreBound(f.shards.data(), f.shards.size(), 0.2, 7,
                              &f.merged_out);
  f.ExpectAggregatesMatch();
  f.ExpectOutputsMatch();

  f.reference.ReleaseWithEdgeBound(9.0, 12, &f.ref_out);
  MergedReleaseWithEdgeBound(f.shards.data(), f.shards.size(), 9.0, 12,
                             &f.merged_out);
  f.ExpectAggregatesMatch();
  f.ExpectOutputsMatch();

  f.reference.ReleaseBest(3, 100, &f.ref_out);
  MergedReleaseBest(f.shards.data(), f.shards.size(), 3, 100, &f.merged_out);
  f.ExpectAggregatesMatch();
  f.ExpectOutputsMatch();

  // Late duplicate of a released signature: dropped on both sides.
  f.Insert(ScoredTree(0, 0.99, 1));

  f.reference.Drain(100, &f.ref_out);
  MergedDrain(f.shards.data(), f.shards.size(), 100, &f.merged_out);
  f.ExpectAggregatesMatch();
  f.ExpectOutputsMatch();
}

TEST(OutputHeapMerge, FuzzedSequencesMatchSingleHeap) {
  Rng rng(0xBA27C5);
  for (size_t n : {2u, 3u, 5u, 8u}) {
    for (int round = 0; round < 12; ++round) {
      MergedFixture f(n);
      size_t ops = 30 + rng.Below(40);
      for (size_t op = 0; op < ops; ++op) {
        switch (rng.Below(6)) {
          case 0:
          case 1:
          case 2: {  // insert, small root space to force duplicates
            NodeId root = static_cast<NodeId>(rng.Below(24));
            double score = 0.01 * (1 + rng.Below(99));
            double eraw = 0.5 * (1 + rng.Below(30));
            f.Insert(ScoredTree(root, score, eraw));
            break;
          }
          case 3: {
            double bound = 0.01 * rng.Below(110);
            size_t limit = f.ref_out.size() + rng.Below(6);
            f.reference.ReleaseWithScoreBound(bound, limit, &f.ref_out);
            MergedReleaseWithScoreBound(f.shards.data(), n, bound, limit,
                                        &f.merged_out);
            break;
          }
          case 4: {
            double max_eraw = 0.5 * rng.Below(35);
            size_t limit = f.ref_out.size() + rng.Below(6);
            f.reference.ReleaseWithEdgeBound(max_eraw, limit, &f.ref_out);
            MergedReleaseWithEdgeBound(f.shards.data(), n, max_eraw, limit,
                                       &f.merged_out);
            break;
          }
          case 5: {
            size_t count = 1 + rng.Below(4);
            f.reference.ReleaseBest(count, 1000, &f.ref_out);
            MergedReleaseBest(f.shards.data(), n, count, 1000, &f.merged_out);
            break;
          }
        }
        f.ExpectAggregatesMatch();
      }
      f.reference.Drain(1000, &f.ref_out);
      MergedDrain(f.shards.data(), n, 1000, &f.merged_out);
      f.ExpectAggregatesMatch();
      f.ExpectOutputsMatch();
    }
  }
}

TEST(OutputHeapMerge, LimitedReleaseStillDiscardsDuplicateOfTakenSig) {
  // The winner of a duplicated signature is taken against a tight
  // limit; the loser must be tombstoned in the same merge, not survive
  // as pending to be emitted by a later release.
  std::vector<OutputHeap> shards(2);
  ASSERT_TRUE(shards[0].Insert(ScoredTree(7, 0.4, 5)));
  ASSERT_TRUE(shards[1].Insert(ScoredTree(7, 0.9, 3)));
  std::vector<AnswerTree> out;
  MergedDrain(shards.data(), 2, /*limit=*/1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].score, 0.9);
  EXPECT_EQ(MergedPendingCount(shards.data(), 2), 0u);
  std::vector<AnswerTree> later;
  MergedDrain(shards.data(), 2, 100, &later);
  EXPECT_TRUE(later.empty()) << "duplicate signature emitted twice";
}

TEST(OutputHeapMerge, CrossHeapDuplicateKeepsBestScore) {
  // Two heaps that (against the searchers' routing invariant) both hold
  // the same signature: the merged drain emits only the higher-scored
  // copy, exactly as a single heap would have kept only it at insert.
  std::vector<OutputHeap> shards(2);
  ASSERT_TRUE(shards[0].Insert(ScoredTree(7, 0.4, 5)));
  ASSERT_TRUE(shards[1].Insert(ScoredTree(7, 0.9, 3)));
  ASSERT_TRUE(shards[0].Insert(ScoredTree(8, 0.2, 6)));
  std::vector<AnswerTree> out;
  MergedDrain(shards.data(), 2, 100, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].score, 0.9);  // best copy of sig(7)
  EXPECT_EQ(out[1].score, 0.2);
  // The losing copy was tombstoned, not left pending.
  EXPECT_EQ(MergedPendingCount(shards.data(), 2), 0u);
}

TEST(OutputHeapMerge, SingleShardIsTheMemberPath) {
  // count == 1 must behave exactly like the member calls (it is the
  // member calls — they share one implementation).
  OutputHeap a;
  std::vector<OutputHeap> b(1);
  for (NodeId r = 0; r < 10; ++r) {
    AnswerTree t = ScoredTree(r, 0.1 * (r % 4), 10.0 - r);
    a.InsertCopy(t);
    b[0].InsertCopy(t);
  }
  std::vector<AnswerTree> out_a;
  std::vector<AnswerTree> out_b;
  a.ReleaseWithEdgeBound(7.0, 5, &out_a);
  MergedReleaseWithEdgeBound(b.data(), 1, 7.0, 5, &out_b);
  a.Drain(100, &out_a);
  MergedDrain(b.data(), 1, 100, &out_b);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_TRUE(SameAnswer(out_a[i], out_b[i])) << i;
  }
}

}  // namespace
}  // namespace banks
