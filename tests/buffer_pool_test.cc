#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace banks {
namespace {

/// In-memory page source with a deterministic per-page byte pattern, so
/// tests can verify a pinned frame holds the right page's bytes.
class FakeSource : public PageSource {
 public:
  FakeSource(size_t num_pages, uint32_t page_len)
      : pages_(num_pages, std::vector<std::byte>(page_len)) {
    for (size_t p = 0; p < num_pages; ++p) {
      for (size_t i = 0; i < page_len; ++i) {
        pages_[p][i] = ExpectedByte(static_cast<PageId>(p), i);
      }
    }
  }

  static std::byte ExpectedByte(PageId page, size_t i) {
    return static_cast<std::byte>((page * 31 + i * 7 + 5) & 0xFF);
  }

  size_t NumPages() const override { return pages_.size(); }
  uint32_t PageLength(PageId page) const override {
    return static_cast<uint32_t>(pages_[page].size());
  }
  bool ReadPage(PageId page, std::byte* out) const override {
    reads_.fetch_add(1, std::memory_order_relaxed);
    if (fail_reads_.load(std::memory_order_relaxed) > 0) {
      fail_reads_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    std::memcpy(out, pages_[page].data(), pages_[page].size());
    return true;
  }
  int reads() const { return reads_.load(std::memory_order_relaxed); }
  /// The next `n` reads fail (IO-error injection).
  void FailNextReads(int n) {
    fail_reads_.store(n, std::memory_order_relaxed);
  }

 private:
  std::vector<std::vector<std::byte>> pages_;
  mutable std::atomic<int> reads_{0};
  mutable std::atomic<int> fail_reads_{0};
};

void ExpectPageBytes(const PagePin& pin) {
  ASSERT_NE(pin.data(), nullptr);
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(pin.data()[i], FakeSource::ExpectedByte(pin.page(), i))
        << "page " << pin.page() << " byte " << i;
  }
}

/// Listener recording the OnFetchQueued / OnPageReady protocol.
class CountingListener : public PageFetchListener {
 public:
  void OnFetchQueued(PageId) override {
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnPageReady(PageId page) override {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.push_back(page);
    cv_.notify_all();
  }

  /// Blocks until `count` OnPageReady calls landed (5s safety net).
  bool WaitForReady(size_t count) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(5),
                        [&] { return ready_.size() >= count; });
  }
  std::vector<PageId> ready() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ready_;
  }
  int queued() const { return queued_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PageId> ready_;
  std::atomic<int> queued_{0};
};

constexpr uint32_t kPageLen = 256;

BufferPoolOptions PoolOf(size_t pages, EvictionPolicy policy) {
  BufferPoolOptions o;
  o.capacity_bytes = pages * kPageLen;
  o.policy = policy;
  return o;
}

TEST(BufferPool, PinLoadsAndSecondPinHits) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(4, EvictionPolicy::kLRU));
  {
    PagePin pin;
    pool.Pin(0, &pin);
    EXPECT_FALSE(pin.hit());
    ExpectPageBytes(pin);
  }
  {
    PagePin pin;
    pool.Pin(0, &pin);
    EXPECT_TRUE(pin.hit());
    ExpectPageBytes(pin);
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(src.reads(), 1);
}

TEST(BufferPool, PinCountBlocksEvictionAndForcesOvershoot) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(1, EvictionPolicy::kLRU));
  PagePin a;
  pool.Pin(0, &a);
  // Page 0 is pinned and the pool holds one page: loading page 1 cannot
  // evict, so the pool overshoots its budget rather than deadlock.
  PagePin b;
  pool.Pin(1, &b);
  ExpectPageBytes(a);  // pinned frame must remain intact
  ExpectPageBytes(b);
  BufferPoolStats s = pool.stats();
  EXPECT_GE(s.capacity_overshoots, 1u);
  EXPECT_EQ(s.resident_pages, 2u);
  EXPECT_EQ(s.pinned_pages, 2u);
  a.Reset();
  b.Reset();
  // With pins gone, the next load can evict back under budget.
  PagePin c;
  pool.Pin(2, &c);
  EXPECT_GE(pool.stats().evictions, 1u);
}

TEST(BufferPool, PinCountPerFrameIsCorrect) {
  FakeSource src(2, kPageLen);
  BufferPool pool(&src, PoolOf(2, EvictionPolicy::kLRU));
  PagePin p1, p2;
  pool.Pin(0, &p1);
  pool.Pin(0, &p2);
  EXPECT_EQ(pool.stats().pinned_pages, 1u);  // one frame, two pins
  p1.Reset();
  EXPECT_EQ(pool.stats().pinned_pages, 1u);  // still held by p2
  p2.Reset();
  EXPECT_EQ(pool.stats().pinned_pages, 0u);
}

TEST(BufferPool, MovedPinTransfersOwnership) {
  FakeSource src(2, kPageLen);
  BufferPool pool(&src, PoolOf(2, EvictionPolicy::kLRU));
  PagePin a;
  pool.Pin(0, &a);
  PagePin b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(pool.stats().pinned_pages, 1u);
  b.Reset();
  EXPECT_EQ(pool.stats().pinned_pages, 0u);
}

TEST(BufferPool, LRUEvictsLeastRecentlyPinned) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(2, EvictionPolicy::kLRU));
  {
    PagePin pin;
    pool.Pin(0, &pin);
  }
  {
    PagePin pin;
    pool.Pin(1, &pin);
  }
  {
    PagePin pin;  // touch page 0: page 1 becomes the LRU victim
    pool.Pin(0, &pin);
  }
  {
    PagePin pin;
    pool.Pin(2, &pin);
  }
  EXPECT_TRUE(pool.Resident(0));
  EXPECT_FALSE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(BufferPool, FIFOEvictsOldestLoadDespiteTouches) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(2, EvictionPolicy::kFIFO));
  {
    PagePin pin;
    pool.Pin(0, &pin);
  }
  {
    PagePin pin;
    pool.Pin(1, &pin);
  }
  {
    PagePin pin;  // re-pin page 0 — FIFO ignores recency, 0 still oldest
    pool.Pin(0, &pin);
  }
  {
    PagePin pin;
    pool.Pin(2, &pin);
  }
  EXPECT_FALSE(pool.Resident(0));
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
}

TEST(BufferPool, NoDirtyPagesEverAndEvictionNeverWritesBack) {
  FakeSource src(8, kPageLen);
  BufferPool pool(&src, PoolOf(2, EvictionPolicy::kLRU));
  for (int round = 0; round < 3; ++round) {
    for (PageId p = 0; p < 8; ++p) {
      PagePin pin;
      pool.Pin(p, &pin);
      ExpectPageBytes(pin);
      EXPECT_EQ(pool.stats().dirty_pages, 0u);
    }
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.dirty_pages, 0u);
  EXPECT_GT(s.evictions, 0u);
  // Evicted-and-reloaded pages still carry the source's bytes (nothing
  // was "lost" by dropping a clean frame).
  PagePin pin;
  pool.Pin(0, &pin);
  ExpectPageBytes(pin);
}

TEST(BufferPool, RequestFetchAsyncExactlyOneReadyPerQueued) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(4, EvictionPolicy::kLRU));
  auto listener = std::make_shared<CountingListener>();
  ASSERT_FALSE(pool.Resident(2));
  pool.RequestFetch(2, listener);
  ASSERT_TRUE(listener->WaitForReady(1));
  EXPECT_EQ(listener->ready().size(), 1u);
  EXPECT_EQ(listener->ready()[0], 2u);
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_EQ(pool.stats().fetch_requests, 1u);
  // The async load counts as a fetch, and a later Pin is a hit.
  PagePin pin;
  pool.Pin(2, &pin);
  EXPECT_TRUE(pin.hit());
}

TEST(BufferPool, RequestFetchResidentFiresInline) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(4, EvictionPolicy::kLRU));
  {
    PagePin pin;
    pool.Pin(1, &pin);
  }
  auto listener = std::make_shared<CountingListener>();
  pool.RequestFetch(1, listener);
  // Inline completion: ready before any wait.
  EXPECT_EQ(listener->ready().size(), 1u);
  EXPECT_EQ(listener->ready()[0], 1u);
}

TEST(BufferPool, DuplicateFetchRequestsEachGetOneReady) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(4, EvictionPolicy::kLRU));
  auto l1 = std::make_shared<CountingListener>();
  auto l2 = std::make_shared<CountingListener>();
  pool.RequestFetch(3, l1);
  pool.RequestFetch(3, l2);  // attaches to the in-flight load
  ASSERT_TRUE(l1->WaitForReady(1));
  ASSERT_TRUE(l2->WaitForReady(1));
  EXPECT_EQ(l1->ready().size(), 1u);
  EXPECT_EQ(l2->ready().size(), 1u);
}

TEST(BufferPool, PathologicallySmallPoolStaysCorrect) {
  FakeSource src(8, kPageLen);
  BufferPoolOptions tiny;
  tiny.capacity_bytes = 1;  // smaller than any single page
  BufferPool pool(&src, tiny);
  for (int round = 0; round < 2; ++round) {
    for (PageId p = 0; p < 8; ++p) {
      PagePin pin;
      pool.Pin(p, &pin);
      ExpectPageBytes(pin);
    }
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 0u);  // nothing ever fits to stay resident
  EXPECT_EQ(s.misses, 16u);
  EXPECT_EQ(s.dirty_pages, 0u);
}

TEST(BufferPool, FailedReadFailsPinAndRetrySucceeds) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(4, EvictionPolicy::kLRU));
  src.FailNextReads(1);
  {
    PagePin pin;
    const std::byte* data = pool.Pin(0, &pin);
    EXPECT_EQ(data, nullptr);
    EXPECT_TRUE(pin.failed());
    EXPECT_TRUE(pin.empty());  // no frame held — destruction is a no-op
    EXPECT_EQ(pin.data(), nullptr);
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.io_errors, 1u);
  EXPECT_EQ(s.resident_pages, 0u);  // the failed frame was reclaimed
  EXPECT_FALSE(pool.Resident(0));
  // The failed page left the table, so a retry reads fresh and succeeds
  // (transient errors recover).
  PagePin pin;
  ASSERT_NE(pool.Pin(0, &pin), nullptr);
  EXPECT_FALSE(pin.failed());
  ExpectPageBytes(pin);
  EXPECT_EQ(pool.stats().io_errors, 1u);
}

TEST(BufferPool, FailedAsyncFetchStillFiresReadyAndCounts) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(4, EvictionPolicy::kLRU));
  auto listener = std::make_shared<CountingListener>();
  src.FailNextReads(1);
  pool.RequestFetch(2, listener);
  // The protocol owes exactly one OnPageReady per OnFetchQueued even
  // when the read fails; the requeued task's next pin sees the error.
  ASSERT_TRUE(listener->WaitForReady(1));
  EXPECT_EQ(listener->ready().size(), 1u);
  EXPECT_EQ(pool.stats().io_errors, 1u);
  EXPECT_FALSE(pool.Resident(2));
}

TEST(BufferPool, ConcurrentPinsOnFailedLoadAllFail) {
  FakeSource src(2, kPageLen);
  BufferPool pool(&src, PoolOf(2, EvictionPolicy::kLRU));
  src.FailNextReads(1);
  constexpr int kThreads = 4;
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      PagePin pin;
      const std::byte* data = pool.Pin(1, &pin);
      if (data == nullptr && pin.failed()) {
        failed.fetch_add(1, std::memory_order_relaxed);
      } else {
        ExpectPageBytes(pin);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Exactly one read failed; every pin attached to that load failed with
  // it, and any pin that arrived after the retry got good bytes.
  EXPECT_GE(failed.load(), 1);
  EXPECT_EQ(pool.stats().io_errors, 1u);
  PagePin pin;
  ASSERT_NE(pool.Pin(1, &pin), nullptr);
  ExpectPageBytes(pin);
}

TEST(BufferPool, StatsGaugesTrackResidency) {
  FakeSource src(4, kPageLen);
  BufferPool pool(&src, PoolOf(4, EvictionPolicy::kLRU));
  PagePin a, b;
  pool.Pin(0, &a);
  pool.Pin(1, &b);
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.resident_pages, 2u);
  EXPECT_EQ(s.resident_bytes, 2u * kPageLen);
  EXPECT_EQ(s.pinned_pages, 2u);
  a.Reset();
  s = pool.stats();
  EXPECT_EQ(s.resident_pages, 2u);  // unpinned but still cached
  EXPECT_EQ(s.pinned_pages, 1u);
}

}  // namespace
}  // namespace banks
