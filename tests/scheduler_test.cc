// Serving-core tests: cooperative Scheduler + push subscriptions.
//
// The load-bearing property is the differential one — a subscription's
// pushed answer sequence must be byte-identical to the drained Query,
// for every algorithm and shard count, because quanta only decide when
// Resume returns, never what the search computes. Around it: weighted
// fair queueing (stride, 2:1 within tolerance on a manually-driven
// scheduler), admission control (queued tasks hold zero context
// leases; overflow is rejected with a terminal push), scheduler-
// enforced deadlines and cancellation (contexts come back warm), and
// delivery-credit flow control with detach into compact StreamState.

#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "search/answer_stream.h"
#include "search/context_pool.h"
#include "search/searcher.h"
#include "serve/queue_sink.h"
#include "test_util.h"

namespace banks {
namespace {

using testing::MakeRandomGraph;

void ExpectSameDeterministicMetrics(const SearchMetrics& a,
                                    const SearchMetrics& b) {
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.edges_relaxed, b.edges_relaxed);
  EXPECT_EQ(a.propagation_steps, b.propagation_steps);
  EXPECT_EQ(a.answers_generated, b.answers_generated);
  EXPECT_EQ(a.answers_output, b.answers_output);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

/// Pops everything out of a finished QueueSink, in push order.
std::vector<AnswerTree> DrainSink(QueueSink* sink) {
  std::vector<AnswerTree> out;
  AnswerTree tree;
  while (sink->TryPop(&tree)) out.push_back(std::move(tree));
  return out;
}

/// A workload big enough to span many quanta: uniform prestige, two
/// keyword origin sets spread over a pseudo-random graph.
struct Workload {
  Graph graph;
  std::vector<double> prestige;
  std::vector<std::vector<NodeId>> origins;
  SearchOptions options;

  explicit Workload(uint64_t seed = 7, size_t nodes = 600,
                    size_t edges = 2400) {
    graph = MakeRandomGraph(nodes, edges, seed);
    prestige.assign(graph.num_nodes(), 1.0);
    origins = {{1, 5, 9, 33}, {2, 11, 17, 54}, {3, 23, 71}};
    options.k = 10;
  }

  std::unique_ptr<Searcher> NewSearcher(
      Algorithm algorithm = Algorithm::kBidirectional) const {
    return CreateSearcher(algorithm, graph, prestige, options);
  }

  SearchResult Reference(Algorithm algorithm = Algorithm::kBidirectional)
      const {
    return NewSearcher(algorithm)->Search(origins);
  }

  TaskSpec Spec(AnswerSink* sink,
                Algorithm algorithm = Algorithm::kBidirectional) const {
    TaskSpec spec;
    spec.searcher = NewSearcher(algorithm);
    spec.origins = origins;
    spec.sink = sink;
    return spec;
  }
};

/// Drives a manual-mode scheduler until the subscription finishes (with
/// a decision-count safety net so a bug fails instead of hanging).
SubscribeStatus DriveToFinish(Scheduler* scheduler, const Subscription& sub,
                              size_t max_decisions = 1'000'000) {
  for (size_t i = 0; i < max_decisions && !sub.finished(); ++i) {
    if (!scheduler->DriveOne()) {
      // Nothing runnable: only legitimate when the task waits on
      // credits or admission; the caller handles those states.
      break;
    }
  }
  return sub.status();
}

// ---- Differential: Subscribe ≡ Query, per algorithm × shard count ---------

struct ServeCase {
  Algorithm algorithm;
  uint32_t shards;
};

std::string ServeCaseName(const ::testing::TestParamInfo<ServeCase>& info) {
  std::string name = AlgorithmName(info.param.algorithm);
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name + "Shards" + std::to_string(info.param.shards);
}

class SchedulerDifferentialTest : public ::testing::TestWithParam<ServeCase> {
};

TEST_P(SchedulerDifferentialTest, SubscribeMatchesDrainedQuery) {
  const ServeCase& c = GetParam();
  Workload w;
  w.options.shard_count = c.shards;
  SearchResult reference = w.Reference(c.algorithm);
  ASSERT_FALSE(reference.answers.empty());

  // Worker-backed scheduler with a deliberately tiny quantum so the
  // search is chopped into many slices — the differential must hold for
  // any pause pattern.
  SchedulerOptions so;
  so.num_workers = 2;
  so.quantum_steps = 3;
  Scheduler scheduler(so);
  QueueSink sink;
  Subscription sub = scheduler.Submit(w.Spec(&sink, c.algorithm));
  EXPECT_EQ(sub.admission(), AdmissionState::kAdmitted);
  EXPECT_EQ(sub.Wait(), SubscribeStatus::kCompleted);

  std::vector<AnswerTree> got = DrainSink(&sink);
  ASSERT_EQ(got.size(), reference.answers.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameAnswer(got[i], reference.answers[i]))
        << "answer " << i << " differs";
  }
  ExpectSameDeterministicMetrics(sink.final_metrics(), reference.metrics);
  EXPECT_EQ(sub.answers_delivered(), reference.answers.size());
}

INSTANTIATE_TEST_SUITE_P(
    Serve, SchedulerDifferentialTest,
    ::testing::Values(ServeCase{Algorithm::kBidirectional, 1},
                      ServeCase{Algorithm::kBidirectional, 4},
                      ServeCase{Algorithm::kBackwardSI, 1},
                      ServeCase{Algorithm::kBackwardSI, 4},
                      ServeCase{Algorithm::kBackwardMI, 1},
                      ServeCase{Algorithm::kBackwardMI, 4}),
    ServeCaseName);

// ---- Fair queueing --------------------------------------------------------

TEST(SchedulerFairness, StrideServesTenantsByWeight) {
  // Manual drive: no worker threads, every scheduling decision happens
  // in DriveOne on this thread, so quanta counts are deterministic
  // modulo search length. Tenant "a" (weight 2) must receive twice
  // tenant "b"'s (weight 1) service while both stay backlogged.
  Workload w;
  SchedulerOptions so;
  so.num_workers = 0;
  so.quantum_steps = 4;
  so.quantum_seconds = 0;  // steps-only quanta: no wall-clock noise
  Scheduler scheduler(so);

  auto submit = [&](const std::string& tenant, double weight) {
    auto sink = std::make_unique<QueueSink>();
    TaskSpec spec = w.Spec(sink.get());
    spec.tenant = tenant;
    spec.weight = weight;
    Subscription sub = scheduler.Submit(std::move(spec));
    return std::pair(std::move(sink), sub);
  };
  std::vector<std::pair<std::unique_ptr<QueueSink>, Subscription>> subs;
  for (int i = 0; i < 6; ++i) subs.push_back(submit("a", 2.0));
  for (int i = 0; i < 6; ++i) subs.push_back(submit("b", 1.0));

  // Drive while BOTH tenants still have live tasks; the stride ratio is
  // only defined while both are backlogged.
  uint64_t a_quanta = 0;
  uint64_t b_quanta = 0;
  while (scheduler.DriveOne()) {
    Scheduler::Stats stats = scheduler.Snapshot();
    bool both_open = true;
    for (const auto& t : stats.tenants) {
      if (t.open_tasks == 0) both_open = false;
    }
    if (!both_open) break;
    a_quanta = stats.tenants[0].quanta;  // sorted by name: "a" then "b"
    b_quanta = stats.tenants[1].quanta;
  }
  ASSERT_GT(b_quanta, 10u) << "workload too short to measure fairness";
  double ratio = static_cast<double>(a_quanta) / static_cast<double>(b_quanta);
  EXPECT_GT(ratio, 2.0 * 0.75) << "a=" << a_quanta << " b=" << b_quanta;
  EXPECT_LT(ratio, 2.0 * 1.25) << "a=" << a_quanta << " b=" << b_quanta;

  for (auto& [sink, sub] : subs) {
    DriveToFinish(&scheduler, sub);
    EXPECT_EQ(sub.status(), SubscribeStatus::kCompleted);
  }
}

// ---- Admission control ----------------------------------------------------

TEST(SchedulerAdmission, QueuedTaskHoldsNoContextLease) {
  Workload w;
  SearchContextPool pool;
  SchedulerOptions so;
  so.num_workers = 0;
  so.max_running = 1;
  so.quantum_steps = 2;
  so.context_pool = &pool;
  Scheduler scheduler(so);

  // Synthetic epoch pins (as Engine::Subscribe would attach): the pin
  // must live exactly as long as its task, leases or not.
  auto snap_a = std::make_shared<int>(0);
  auto snap_b = std::make_shared<int>(0);
  std::weak_ptr<int> watch_a = snap_a;
  std::weak_ptr<int> watch_b = snap_b;

  QueueSink sink_a;
  QueueSink sink_b;
  TaskSpec spec_a = w.Spec(&sink_a);
  spec_a.epoch_pin = EpochPin{std::move(snap_a), 3};
  Subscription a = scheduler.Submit(std::move(spec_a));
  EXPECT_EQ(a.admission(), AdmissionState::kAdmitted);
  ASSERT_TRUE(scheduler.DriveOne());  // a runs its first quantum: attaches
  EXPECT_EQ(pool.leased(), 1u);

  TaskSpec spec_b = w.Spec(&sink_b);
  spec_b.epoch_pin = EpochPin{std::move(snap_b), 7};
  Subscription b = scheduler.Submit(std::move(spec_b));
  EXPECT_EQ(b.admission(), AdmissionState::kQueued);
  ASSERT_TRUE(scheduler.DriveOne());  // serves a again; b stays queued
  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.admission_queued, 1u);
  EXPECT_EQ(stats.contexts_attached, 1u);
  // The acceptance property: an admitted-but-queued subscription holds
  // ZERO SearchContextPool leases — only the running task has one.
  EXPECT_EQ(pool.leased(), 1u);
  EXPECT_EQ(pool.size(), 1u);
  // ...but it DOES hold its epoch pin: both snapshots are alive, and
  // oldest_live_epoch is the reclamation bound an updater would see.
  EXPECT_FALSE(watch_b.expired());
  EXPECT_EQ(stats.pinned_epochs, 2u);
  EXPECT_EQ(stats.oldest_live_epoch, 3u);

  // Cancelling the runner frees the slot; b is promoted and completes.
  a.Cancel();
  DriveToFinish(&scheduler, b);
  EXPECT_EQ(a.status(), SubscribeStatus::kCancelled);
  EXPECT_EQ(b.status(), SubscribeStatus::kCompleted);
  EXPECT_EQ(pool.leased(), 0u);
  // Terminal transitions released both pins with the tasks' other
  // resources — nothing keeps the snapshots alive now.
  EXPECT_TRUE(watch_a.expired());
  EXPECT_TRUE(watch_b.expired());
  stats = scheduler.Snapshot();
  EXPECT_EQ(stats.pinned_epochs, 0u);
  EXPECT_EQ(stats.oldest_live_epoch, 0u);
}

TEST(SchedulerAdmission, OverflowIsRejectedWithTerminalPush) {
  Workload w;
  SchedulerOptions so;
  so.num_workers = 0;
  so.max_running = 1;
  so.max_queued = 1;
  Scheduler scheduler(so);

  QueueSink s1, s2, s3;
  auto snap_c = std::make_shared<int>(0);
  std::weak_ptr<int> watch_c = snap_c;
  Subscription a = scheduler.Submit(w.Spec(&s1));
  Subscription b = scheduler.Submit(w.Spec(&s2));
  TaskSpec spec_c = w.Spec(&s3);
  spec_c.epoch_pin = EpochPin{std::move(snap_c), 9};
  Subscription c = scheduler.Submit(std::move(spec_c));
  EXPECT_EQ(a.admission(), AdmissionState::kAdmitted);
  EXPECT_EQ(b.admission(), AdmissionState::kQueued);
  EXPECT_EQ(c.admission(), AdmissionState::kRejected);
  // The rejection is terminal before Submit returned, on this thread.
  EXPECT_EQ(c.status(), SubscribeStatus::kRejected);
  EXPECT_EQ(s3.status(), SubscribeStatus::kRejected);
  EXPECT_TRUE(s3.exhausted());
  // A rejected task never reaches the scheduler's terminal step, so
  // Submit itself must have dropped the pin — a leak here would block
  // epoch reclamation forever.
  EXPECT_TRUE(watch_c.expired());

  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.rejected, 1u);

  DriveToFinish(&scheduler, a);
  DriveToFinish(&scheduler, b);
  EXPECT_EQ(a.status(), SubscribeStatus::kCompleted);
  EXPECT_EQ(b.status(), SubscribeStatus::kCompleted);
}

// ---- Deadlines & cancellation ---------------------------------------------

TEST(SchedulerDeadline, ExpiredTaskIsCancelledAndContextStaysWarm) {
  Workload w;
  SearchContextPool pool;
  SchedulerOptions so;
  so.num_workers = 0;
  so.quantum_steps = 1;
  so.context_pool = &pool;
  Scheduler scheduler(so);

  // An already-expired deadline: the first scheduling decision sweeps
  // the task out without it ever running a quantum.
  {
    QueueSink sink;
    TaskSpec spec = w.Spec(&sink);
    spec.deadline_seconds = 1e-9;
    Subscription sub = scheduler.Submit(std::move(spec));
    while (!sub.finished()) scheduler.DriveOne();
    EXPECT_EQ(sub.status(), SubscribeStatus::kDeadlineExpired);
    EXPECT_EQ(sink.status(), SubscribeStatus::kDeadlineExpired);
    EXPECT_EQ(pool.leased(), 0u);
  }

  // Cancel mid-search: run a few quanta, cancel, and verify the leased
  // context went back to the pool — and is reused warm by the next
  // subscription (the pool never grows past one context).
  {
    QueueSink sink;
    Subscription sub = scheduler.Submit(w.Spec(&sink));
    ASSERT_TRUE(scheduler.DriveOne());
    ASSERT_TRUE(scheduler.DriveOne());
    EXPECT_EQ(pool.leased(), 1u);
    sub.Cancel();
    while (!sub.finished()) scheduler.DriveOne();
    EXPECT_EQ(sub.status(), SubscribeStatus::kCancelled);
    EXPECT_EQ(pool.leased(), 0u);
  }
  {
    SearchResult reference = w.Reference();
    QueueSink sink;
    Subscription sub = scheduler.Submit(w.Spec(&sink));
    DriveToFinish(&scheduler, sub);
    EXPECT_EQ(sub.status(), SubscribeStatus::kCompleted);
    std::vector<AnswerTree> got = DrainSink(&sink);
    ASSERT_EQ(got.size(), reference.answers.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(SameAnswer(got[i], reference.answers[i]));
    }
  }
  EXPECT_EQ(pool.size(), 1u) << "cancelled contexts must be reused warm";
}

TEST(SchedulerDeadline, WorkerEnforcesDeadlineWithoutCallerInvolvement) {
  // Worker-backed: the scheduler itself must notice the deadline — the
  // caller only Waits.
  Workload w(11, 1200, 5000);
  SchedulerOptions so;
  so.num_workers = 1;
  so.quantum_steps = 1;  // plenty of decision points
  Scheduler scheduler(so);
  QueueSink sink;
  TaskSpec spec = w.Spec(&sink);
  spec.deadline_seconds = 0.02;
  Subscription sub = scheduler.Submit(std::move(spec));
  SubscribeStatus status = sub.Wait();
  // On a fast machine the search may legitimately finish first; the
  // invariant is a terminal push of one of the two statuses.
  EXPECT_TRUE(status == SubscribeStatus::kDeadlineExpired ||
              status == SubscribeStatus::kCompleted);
  EXPECT_EQ(sink.status(), status);
}

// ---- Delivery credits & detach --------------------------------------------

TEST(SchedulerCredits, CreditStarvedTaskDetachesIntoStreamState) {
  Workload w;
  SearchResult reference = w.Reference();
  ASSERT_GE(reference.answers.size(), 2u)
      << "workload must yield several answers for this test";

  SearchContextPool pool;
  SchedulerOptions so;
  so.num_workers = 0;
  so.quantum_steps = 8;
  so.context_pool = &pool;
  Scheduler scheduler(so);

  QueueSink sink;
  TaskSpec spec = w.Spec(&sink);
  spec.answer_credits = 1;  // one answer may be pushed, then starve
  spec.epoch_pin = EpochPin{std::make_shared<int>(0), 4};
  Subscription sub = scheduler.Submit(std::move(spec));
  while (scheduler.DriveOne()) {
  }
  // The search ran to completion, one answer was pushed, and the task
  // now idles in credit-wait DETACHED: compact StreamState only, zero
  // context leases — but its epoch pin is still held (the undelivered
  // answers reference the snapshot's epoch until the terminal push).
  EXPECT_FALSE(sub.finished());
  EXPECT_EQ(sub.answers_delivered(), 1u);
  EXPECT_EQ(sink.buffered(), 1u);
  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.credit_waiting, 1u);
  EXPECT_EQ(stats.contexts_attached, 0u);
  EXPECT_EQ(pool.leased(), 0u);
  EXPECT_EQ(stats.pinned_epochs, 1u);
  EXPECT_EQ(stats.oldest_live_epoch, 4u);

  // Topping up credits resumes delivery-only quanta to completion.
  sub.AddCredits(kUnlimitedCredits / 2);
  DriveToFinish(&scheduler, sub);
  EXPECT_EQ(sub.status(), SubscribeStatus::kCompleted);
  std::vector<AnswerTree> got = DrainSink(&sink);
  ASSERT_EQ(got.size(), reference.answers.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameAnswer(got[i], reference.answers[i]));
  }
  ExpectSameDeterministicMetrics(sink.final_metrics(), reference.metrics);
}

TEST(SchedulerCredits, StarvedSubscriptionHoldsZeroLeasesAcrossManyQuanta) {
  // The slow-consumer guarantee the network layer leans on
  // (docs/NETWORK.md "Backpressure"): a subscription whose consumer
  // grants no credits parks in credit-wait holding ZERO pool leases —
  // not just momentarily, but across arbitrarily many quanta of other
  // tenants' work — and resumes losslessly once credits arrive.
  Workload w;
  SearchResult reference = w.Reference();
  ASSERT_GE(reference.answers.size(), 2u);

  SearchContextPool pool;
  SchedulerOptions so;
  so.num_workers = 0;
  so.quantum_steps = 8;
  so.context_pool = &pool;
  Scheduler scheduler(so);

  QueueSink starved_sink;
  TaskSpec starved_spec = w.Spec(&starved_sink);
  starved_spec.answer_credits = 0;  // consumer grants nothing up front
  Subscription starved = scheduler.Submit(std::move(starved_spec));
  while (scheduler.DriveOne()) {
  }
  EXPECT_FALSE(starved.finished());
  EXPECT_EQ(starved.answers_delivered(), 0u);
  EXPECT_EQ(scheduler.Snapshot().credit_waiting, 1u);
  EXPECT_EQ(pool.leased(), 0u);

  // Several full searches of a competing tenant come and go while the
  // starved task stays parked. At every single scheduling decision the
  // only lease in the pool may be the active task's — the parked one
  // contributes nothing (a leak here is exactly the unbounded-buffering
  // failure mode the credit design exists to prevent).
  for (int round = 0; round < 3; ++round) {
    QueueSink other_sink;
    TaskSpec other_spec = w.Spec(&other_sink);
    other_spec.tenant = "other";
    Subscription other = scheduler.Submit(std::move(other_spec));
    size_t quanta = 0;
    while (!other.finished()) {
      ASSERT_TRUE(scheduler.DriveOne()) << "competing task must progress";
      ASSERT_LE(pool.leased(), 1u) << "starved task must hold no lease";
      ++quanta;
    }
    EXPECT_GT(quanta, 1u) << "workload must span several quanta";
    EXPECT_EQ(other.status(), SubscribeStatus::kCompleted);
    Scheduler::Stats stats = scheduler.Snapshot();
    EXPECT_EQ(stats.credit_waiting, 1u);
    EXPECT_EQ(stats.contexts_attached, 0u);
    EXPECT_EQ(pool.leased(), 0u);
  }
  EXPECT_FALSE(starved.finished());
  EXPECT_EQ(starved.answers_delivered(), 0u);

  // One large grant resumes delivery-only quanta; the sequence and the
  // deterministic metrics must be exactly the drained reference's.
  starved.AddCredits(kUnlimitedCredits / 2);
  DriveToFinish(&scheduler, starved);
  EXPECT_EQ(starved.status(), SubscribeStatus::kCompleted);
  std::vector<AnswerTree> got = DrainSink(&starved_sink);
  ASSERT_EQ(got.size(), reference.answers.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameAnswer(got[i], reference.answers[i]));
  }
  ExpectSameDeterministicMetrics(starved_sink.final_metrics(),
                                 reference.metrics);
}

// ---- Engine front door: Subscribe + scheduler-backed AnswerStream --------

class ServeEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpConfig config;
    config.num_authors = 120;
    config.num_papers = 240;
    config.num_conferences = 10;
    db_ = new Database(GenerateDblp(config));
    engine_ = new Engine(Engine::FromDatabase(*db_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static SearchOptions Options() {
    SearchOptions options;
    options.k = 5;
    options.max_nodes_explored = 100'000;
    return options;
  }
  static const std::vector<std::string>& Keywords() {
    static const std::vector<std::string> kw = {"conference", "author"};
    return kw;
  }
  static Database* db_;
  static Engine* engine_;
};

Database* ServeEngineTest::db_ = nullptr;
Engine* ServeEngineTest::engine_ = nullptr;

TEST_F(ServeEngineTest, SubscribeMatchesQuery) {
  SearchResult reference =
      engine_->Query(Keywords(), Algorithm::kBidirectional, Options());
  ASSERT_FALSE(reference.answers.empty());

  SchedulerOptions so;
  so.num_workers = 2;
  so.quantum_steps = 16;
  Scheduler scheduler(so);
  QueueSink sink;
  SubscribeOptions subscribe;
  subscribe.scheduler = &scheduler;
  Subscription sub = engine_->Subscribe(Keywords(), Algorithm::kBidirectional,
                                        &sink, Options(), subscribe);
  EXPECT_EQ(sub.Wait(), SubscribeStatus::kCompleted);
  std::vector<AnswerTree> got = DrainSink(&sink);
  ASSERT_EQ(got.size(), reference.answers.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameAnswer(got[i], reference.answers[i])) << i;
  }
  ExpectSameDeterministicMetrics(sink.final_metrics(), reference.metrics);
}

TEST_F(ServeEngineTest, ScheduledStreamMatchesInlineStream) {
  // The pull stream re-expressed over the serving core: same cursor
  // API, a Subscription + QueueSink underneath, identical sequence.
  SearchResult reference =
      engine_->Query(Keywords(), Algorithm::kBidirectional, Options());
  ASSERT_FALSE(reference.answers.empty());

  SchedulerOptions so;
  so.num_workers = 1;
  so.quantum_steps = 16;
  Scheduler scheduler(so);
  StreamOptions stream_options;
  stream_options.scheduler = &scheduler;
  AnswerStream stream = engine_->OpenQuery(Keywords(),
                                           Algorithm::kBidirectional,
                                           Options(), stream_options);
  size_t pulled = 0;
  while (auto answer = stream.Next()) {
    ASSERT_LT(pulled, reference.answers.size());
    EXPECT_TRUE(SameAnswer(*answer, reference.answers[pulled])) << pulled;
    ++pulled;
  }
  EXPECT_EQ(pulled, reference.answers.size());
  EXPECT_TRUE(stream.done());
  EXPECT_FALSE(stream.hit_limit());
  EXPECT_EQ(stream.answers_pulled(), reference.answers.size());
  ExpectSameDeterministicMetrics(stream.metrics(), reference.metrics);
}

TEST_F(ServeEngineTest, AbandonedScheduledStreamCancelsItsSubscription) {
  SchedulerOptions so;
  so.num_workers = 1;
  so.quantum_steps = 8;
  Scheduler scheduler(so);
  StreamOptions stream_options;
  stream_options.scheduler = &scheduler;
  {
    AnswerStream stream = engine_->OpenQuery(Keywords(),
                                             Algorithm::kBidirectional,
                                             Options(), stream_options);
    (void)stream.Next();  // pull one answer, then abandon
  }  // destructor must cancel + wait out the subscription: no leak, no hang
  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.runnable + stats.executing + stats.credit_waiting +
                stats.admission_queued,
            0u);
  EXPECT_EQ(scheduler.context_pool().leased(), 0u);
}

// ---- Concurrency storm (ASan/TSan fodder) ---------------------------------

TEST(SchedulerStorm, ConcurrentTenantsDeliverIdenticalSequences) {
  constexpr Algorithm kAlgos[3] = {Algorithm::kBidirectional,
                                   Algorithm::kBackwardSI,
                                   Algorithm::kBackwardMI};
  Workload w;
  std::vector<SearchResult> references;
  for (Algorithm a : kAlgos) references.push_back(w.Reference(a));

  SchedulerOptions so;
  so.num_workers = 3;
  so.quantum_steps = 5;
  so.max_running = 4;
  Scheduler scheduler(so);

  constexpr size_t kPerThread = 6;
  constexpr size_t kThreads = 2;
  std::vector<std::unique_ptr<QueueSink>> sinks(kThreads * kPerThread);
  std::vector<Subscription> subs(kThreads * kPerThread);
  for (auto& s : sinks) s = std::make_unique<QueueSink>();

  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        size_t slot = t * kPerThread + i;
        TaskSpec spec = w.Spec(sinks[slot].get(), kAlgos[slot % 3]);
        spec.tenant = "tenant-" + std::to_string(t);
        subs[slot] = scheduler.Submit(std::move(spec));
      }
    });
  }
  for (auto& t : submitters) t.join();

  for (size_t slot = 0; slot < subs.size(); ++slot) {
    ASSERT_EQ(subs[slot].Wait(), SubscribeStatus::kCompleted) << slot;
    const SearchResult& ref = references[slot % 3];
    std::vector<AnswerTree> got = DrainSink(sinks[slot].get());
    ASSERT_EQ(got.size(), ref.answers.size()) << slot;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(SameAnswer(got[i], ref.answers[i]))
          << "slot " << slot << " answer " << i;
    }
  }
  Scheduler::Stats stats = scheduler.Snapshot();
  EXPECT_EQ(stats.completed, subs.size());
  EXPECT_EQ(stats.answers_delivered,
            (references[0].answers.size() + references[1].answers.size() +
             references[2].answers.size()) *
                (subs.size() / 3));
}

// ---- Shutdown & misc ------------------------------------------------------

TEST(SchedulerShutdown, OpenTasksGetTerminalShutdownPush) {
  Workload w;
  QueueSink sink;
  Subscription sub;
  {
    SchedulerOptions so;
    so.num_workers = 0;  // never driven: the task stays open
    Scheduler scheduler(so);
    sub = scheduler.Submit(w.Spec(&sink));
    EXPECT_EQ(sub.admission(), AdmissionState::kAdmitted);
    EXPECT_FALSE(sub.finished());
  }  // destructor finishes the task with kShutdown
  EXPECT_EQ(sink.WaitTerminal(), SubscribeStatus::kShutdown);
}

TEST(SchedulerMisc, StatusNamesAndEmptyHandles) {
  EXPECT_STREQ(SubscribeStatusName(SubscribeStatus::kPending), "pending");
  EXPECT_STREQ(SubscribeStatusName(SubscribeStatus::kCompleted), "completed");
  EXPECT_STREQ(SubscribeStatusName(SubscribeStatus::kDeadlineExpired),
               "deadline_expired");
  EXPECT_STREQ(SubscribeStatusName(SubscribeStatus::kCancelled), "cancelled");
  EXPECT_STREQ(SubscribeStatusName(SubscribeStatus::kRejected), "rejected");
  EXPECT_STREQ(SubscribeStatusName(SubscribeStatus::kShutdown), "shutdown");

  Subscription empty;
  EXPECT_FALSE(empty);
  EXPECT_EQ(empty.status(), SubscribeStatus::kPending);
  EXPECT_EQ(empty.answers_delivered(), 0u);
  empty.Cancel();  // no-ops, no crash
  empty.AddCredits(5);
}

}  // namespace
}  // namespace banks
