#include "search/answer_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"

namespace banks {
namespace {

AnswerTree MakeTree(NodeId root, double score) {
  AnswerTree tree;
  tree.root = root;
  tree.keyword_nodes = {root};
  tree.keyword_distances = {0};
  tree.score = score;
  return tree;
}

SearchResult MakeResult(NodeId root) {
  SearchResult result;
  result.answers.push_back(MakeTree(root, 0.5));
  result.metrics.answers_output = 1;
  return result;
}

// ---- Key construction -----------------------------------------------------

TEST(AnswerCacheKey, DependsOnEveryComponent) {
  SearchOptions options;
  std::string base =
      AnswerCacheKey(Algorithm::kBidirectional, options, {"gray", "tx"});
  EXPECT_EQ(base,
            AnswerCacheKey(Algorithm::kBidirectional, options, {"gray", "tx"}));
  EXPECT_NE(base,
            AnswerCacheKey(Algorithm::kBackwardMI, options, {"gray", "tx"}));
  EXPECT_NE(base,
            AnswerCacheKey(Algorithm::kBidirectional, options, {"gray"}));
  // Keyword order is result-affecting (it permutes per-keyword arrays).
  EXPECT_NE(base,
            AnswerCacheKey(Algorithm::kBidirectional, options, {"tx", "gray"}));
  SearchOptions other = options;
  other.k += 1;
  EXPECT_NE(base,
            AnswerCacheKey(Algorithm::kBidirectional, other, {"gray", "tx"}));
}

TEST(AnswerCacheKey, LengthPrefixKeepsJoinInjective) {
  SearchOptions options;
  EXPECT_NE(AnswerCacheKey(Algorithm::kBackwardSI, options, {"ab", "c"}),
            AnswerCacheKey(Algorithm::kBackwardSI, options, {"a", "bc"}));
}

TEST(AnswerCacheKey, GraphEpochChangesTheKey) {
  // The structure epoch is part of the signature: a structural update
  // makes every result cached against the old graph unreachable — the
  // stale-cache half of the live-update contract (docs/UPDATES.md).
  SearchOptions options;
  std::string e0 =
      AnswerCacheKey(Algorithm::kBidirectional, options, {"gray"}, 0);
  EXPECT_EQ(e0, AnswerCacheKey(Algorithm::kBidirectional, options, {"gray"}));
  EXPECT_NE(e0, AnswerCacheKey(Algorithm::kBidirectional, options, {"gray"}, 1));
  EXPECT_NE(AnswerCacheKey(Algorithm::kBidirectional, options, {"gray"}, 1),
            AnswerCacheKey(Algorithm::kBidirectional, options, {"gray"}, 10));
}

// ---- Keyword invalidation -------------------------------------------------

TEST(AnswerCache, InvalidateKeywordsDropsTouchedEntriesOnly) {
  AnswerCache cache;
  cache.Store("q_alpha", {"alpha"}, MakeResult(1));
  cache.Store("q_beta", {"beta"}, MakeResult(2));
  cache.Store("q_both", {"alpha", "beta"}, MakeResult(3));
  ASSERT_EQ(cache.size(), 3u);

  // Touching "alpha" drops the alpha-bearing entries; the pure-beta
  // entry survives (posting-only updates are result-neutral for
  // untouched keywords).
  EXPECT_EQ(cache.InvalidateKeywords({"alpha"}), 2u);
  SearchResult out;
  EXPECT_FALSE(cache.Lookup("q_alpha", &out));
  EXPECT_FALSE(cache.Lookup("q_both", &out));
  EXPECT_TRUE(cache.Lookup("q_beta", &out));
  EXPECT_EQ(out.answers[0].root, 2u);

  // Untouched terms drop nothing.
  EXPECT_EQ(cache.InvalidateKeywords({"gamma"}), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnswerCache, InvalidateKeywordsDropsKeywordlessEntriesConservatively) {
  AnswerCache cache;
  cache.Store("unknown_provenance", MakeResult(5));  // keyword-less overload
  cache.Store("q_beta", {"beta"}, MakeResult(6));
  // An entry without keyword metadata cannot be proven untouched, so
  // any invalidation sweep must drop it.
  EXPECT_EQ(cache.InvalidateKeywords({"alpha"}), 1u);
  SearchResult out;
  EXPECT_FALSE(cache.Lookup("unknown_provenance", &out));
  EXPECT_TRUE(cache.Lookup("q_beta", &out));
  // An empty touched set is a no-op, not a flush.
  EXPECT_EQ(cache.InvalidateKeywords({}), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

// ---- Store / Lookup / TTL -------------------------------------------------

TEST(AnswerCache, StoreThenLookupCopiesResult) {
  AnswerCache cache;
  SearchResult out;
  EXPECT_FALSE(cache.Lookup("k", &out));
  EXPECT_EQ(cache.misses(), 1u);

  cache.Store("k", MakeResult(7));
  ASSERT_TRUE(cache.Lookup("k", &out));
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_EQ(out.answers.size(), 1u);
  EXPECT_TRUE(SameAnswer(out.answers[0], MakeTree(7, 0.5)));
  EXPECT_EQ(out.metrics.answers_output, 1u);

  // Served copies never alias cache storage.
  out.answers[0].root = 99;
  SearchResult again;
  ASSERT_TRUE(cache.Lookup("k", &again));
  EXPECT_EQ(again.answers[0].root, 7u);
}

TEST(AnswerCache, TtlExpiresEntries) {
  double now = 1000.0;
  AnswerCacheOptions options;
  options.ttl_seconds = 10.0;
  options.clock = [&now]() { return now; };
  AnswerCache cache(options);

  cache.Store("k", MakeResult(3));
  SearchResult out;
  now += 9.9;
  EXPECT_TRUE(cache.Lookup("k", &out));
  now += 0.2;  // past the TTL
  EXPECT_FALSE(cache.Lookup("k", &out));
  EXPECT_EQ(cache.size(), 0u);  // expired entry reclaimed

  // Re-storing refreshes the TTL.
  cache.Store("k", MakeResult(4));
  now += 9.0;
  cache.Store("k", MakeResult(4));
  now += 9.0;  // 18s after first store, 9s after refresh
  EXPECT_TRUE(cache.Lookup("k", &out));
}

TEST(AnswerCache, MaxEntriesEvictsOldestFirst) {
  double now = 0.0;
  AnswerCacheOptions options;
  options.ttl_seconds = 100.0;
  options.max_entries = 2;
  options.clock = [&now]() { return now; };
  AnswerCache cache(options);

  cache.Store("a", MakeResult(1));
  now += 1;
  cache.Store("b", MakeResult(2));
  now += 1;
  cache.Store("c", MakeResult(3));  // evicts "a" (oldest)
  EXPECT_EQ(cache.size(), 2u);
  SearchResult out;
  EXPECT_FALSE(cache.Lookup("a", &out));
  EXPECT_TRUE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
}

TEST(AnswerCache, RefreshingAnEntryResetsItsFifoAge) {
  double now = 0.0;
  AnswerCacheOptions options;
  options.ttl_seconds = 100.0;
  options.max_entries = 2;
  options.clock = [&now]() { return now; };
  AnswerCache cache(options);

  cache.Store("a", MakeResult(1));
  now += 1;
  cache.Store("b", MakeResult(2));
  now += 1;
  cache.Store("a", MakeResult(1));  // refresh: "a" is now the youngest
  now += 1;
  cache.Store("c", MakeResult(3));  // must evict "b", not the hot "a"
  SearchResult out;
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
}

TEST(AnswerCache, ExpiryLookupThenRestoreKeepsOneEntry) {
  // The miss-on-expired path reclaims the entry; re-storing the same
  // key must leave exactly one live record (regression: a stale
  // insertion-order side list used to grow forever on this cycle and
  // could evict the freshly re-stored entry as "oldest").
  double now = 0.0;
  AnswerCacheOptions options;
  options.ttl_seconds = 5.0;
  options.max_entries = 2;
  options.clock = [&now]() { return now; };
  AnswerCache cache(options);

  SearchResult out;
  for (int cycle = 0; cycle < 10; ++cycle) {
    cache.Store("k", MakeResult(1));
    now += 6;  // expire
    EXPECT_FALSE(cache.Lookup("k", &out));
  }
  cache.Store("k", MakeResult(1));
  cache.Store("other", MakeResult(2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("k", &out));  // survived despite the churn
  EXPECT_TRUE(cache.Lookup("other", &out));
}

TEST(AnswerCache, EvictionPrefersExpiredEntries) {
  double now = 0.0;
  AnswerCacheOptions options;
  options.ttl_seconds = 5.0;
  options.max_entries = 2;
  options.clock = [&now]() { return now; };
  AnswerCache cache(options);

  cache.Store("old", MakeResult(1));
  now += 6;  // "old" expires
  cache.Store("b", MakeResult(2));
  cache.Store("c", MakeResult(3));  // evicts expired "old", not live "b"
  SearchResult out;
  EXPECT_TRUE(cache.Lookup("b", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
}

// ---- Engine::QueryBatch integration ---------------------------------------

class AnswerCacheBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpConfig config;
    config.num_authors = 150;
    config.num_papers = 300;
    config.num_conferences = 10;
    db_ = new Database(GenerateDblp(config));
    engine_ = new Engine(Engine::FromDatabase(*db_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static Database* db_;
  static Engine* engine_;
};

Database* AnswerCacheBatchTest::db_ = nullptr;
Engine* AnswerCacheBatchTest::engine_ = nullptr;

TEST_F(AnswerCacheBatchTest, SecondBatchServedFromCache) {
  std::vector<BatchQuerySpec> specs(2);
  specs[0].keywords = {"paper", "author"};
  specs[1].keywords = {"writes", "conference"};
  SearchOptions options;
  options.k = 3;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 100'000;

  BatchResult uncached =
      engine_->QueryBatch(specs, Algorithm::kBackwardSI, options);

  AnswerCache cache;
  BatchOptions batch;
  batch.answer_cache = &cache;
  BatchResult first =
      engine_->QueryBatch(specs, Algorithm::kBackwardSI, options, batch);
  EXPECT_EQ(first.answer_cache_hits, 0u);
  EXPECT_EQ(cache.size(), 2u);

  BatchResult second =
      engine_->QueryBatch(specs, Algorithm::kBackwardSI, options, batch);
  EXPECT_EQ(second.answer_cache_hits, 2u);

  // All three batches agree answer for answer.
  for (const BatchResult* r : {&first, &second}) {
    ASSERT_EQ(r->results.size(), uncached.results.size());
    for (size_t i = 0; i < r->results.size(); ++i) {
      ASSERT_EQ(r->results[i].answers.size(),
                uncached.results[i].answers.size());
      for (size_t j = 0; j < r->results[i].answers.size(); ++j) {
        EXPECT_TRUE(SameAnswer(r->results[i].answers[j],
                               uncached.results[i].answers[j]));
      }
    }
  }
}

TEST_F(AnswerCacheBatchTest, CacheKeyRespectsAlgorithmAndOptions) {
  std::vector<BatchQuerySpec> specs(1);
  specs[0].keywords = {"paper", "author"};
  SearchOptions options;
  options.k = 3;
  options.max_nodes_explored = 100'000;

  AnswerCache cache;
  BatchOptions batch;
  batch.answer_cache = &cache;
  (void)engine_->QueryBatch(specs, Algorithm::kBackwardSI, options, batch);

  // Different algorithm: distinct signature, no hit.
  BatchResult other_algo =
      engine_->QueryBatch(specs, Algorithm::kBackwardMI, options, batch);
  EXPECT_EQ(other_algo.answer_cache_hits, 0u);

  // Different k: distinct signature, no hit.
  SearchOptions other_k = options;
  other_k.k = 5;
  BatchResult other_opts =
      engine_->QueryBatch(specs, Algorithm::kBackwardSI, other_k, batch);
  EXPECT_EQ(other_opts.answer_cache_hits, 0u);

  // Identical repeat: hit.
  BatchResult repeat =
      engine_->QueryBatch(specs, Algorithm::kBackwardSI, options, batch);
  EXPECT_EQ(repeat.answer_cache_hits, 1u);
}

TEST_F(AnswerCacheBatchTest, KeywordNormalizationSharesEntries) {
  std::vector<BatchQuerySpec> lower(1), upper(1);
  lower[0].keywords = {"paper", "author"};
  upper[0].keywords = {"PAPER", "Author"};  // index folds case
  SearchOptions options;
  options.k = 3;
  options.max_nodes_explored = 100'000;

  AnswerCache cache;
  BatchOptions batch;
  batch.answer_cache = &cache;
  (void)engine_->QueryBatch(lower, Algorithm::kBackwardSI, options, batch);
  BatchResult served =
      engine_->QueryBatch(upper, Algorithm::kBackwardSI, options, batch);
  EXPECT_EQ(served.answer_cache_hits, 1u);
}

TEST_F(AnswerCacheBatchTest, PreResolvedSpecsBypassCache) {
  std::vector<BatchQuerySpec> specs(1);
  specs[0].origins = engine_->Resolve({"paper", "author"});
  SearchOptions options;
  options.k = 3;
  options.max_nodes_explored = 100'000;

  AnswerCache cache;
  BatchOptions batch;
  batch.answer_cache = &cache;
  (void)engine_->QueryBatch(specs, Algorithm::kBackwardSI, options, batch);
  EXPECT_EQ(cache.size(), 0u);
  BatchResult repeat =
      engine_->QueryBatch(specs, Algorithm::kBackwardSI, options, batch);
  EXPECT_EQ(repeat.answer_cache_hits, 0u);
}

}  // namespace
}  // namespace banks
