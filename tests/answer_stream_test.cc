#include "search/answer_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "prestige/pagerank.h"
#include "search/context_pool.h"
#include "test_util.h"

namespace banks {
namespace {

using testing::MakeRandomGraph;

void ExpectSameDeterministicMetrics(const SearchMetrics& a,
                                    const SearchMetrics& b) {
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.nodes_touched, b.nodes_touched);
  EXPECT_EQ(a.edges_relaxed, b.edges_relaxed);
  EXPECT_EQ(a.propagation_steps, b.propagation_steps);
  EXPECT_EQ(a.answers_generated, b.answers_generated);
  EXPECT_EQ(a.answers_output, b.answers_output);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

void ExpectSameAnswers(const std::vector<AnswerTree>& got,
                       const std::vector<AnswerTree>& want, size_t count) {
  ASSERT_GE(want.size(), count);
  ASSERT_GE(got.size(), count);
  for (size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(SameAnswer(got[i], want[i])) << "answer " << i << " differs";
  }
}

// ---- Differential sweep: algorithm × bound mode × shard count -------------

struct StreamCase {
  Algorithm algorithm;
  BoundMode bound;
  uint32_t shards;
};

std::string CaseName(const ::testing::TestParamInfo<StreamCase>& info) {
  std::string name = AlgorithmName(info.param.algorithm);
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  switch (info.param.bound) {
    case BoundMode::kTight: name += "Tight"; break;
    case BoundMode::kLoose: name += "Loose"; break;
    case BoundMode::kImmediate: name += "Immediate"; break;
  }
  name += "Shards" + std::to_string(info.param.shards);
  return name;
}

std::vector<StreamCase> AllCases() {
  std::vector<StreamCase> cases;
  for (Algorithm a : {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                      Algorithm::kBidirectional}) {
    for (BoundMode b :
         {BoundMode::kTight, BoundMode::kLoose, BoundMode::kImmediate}) {
      for (uint32_t s : {1u, 4u}) cases.push_back({a, b, s});
    }
  }
  return cases;
}

class AnswerStreamSweep : public ::testing::TestWithParam<StreamCase> {
 protected:
  void SetUp() override {
    graph_ = MakeRandomGraph(220, 900, 7);
    prestige_ = UniformPrestige(graph_.num_nodes());
    origins_ = {{0, 1, 2}, {3, 4, 5}};
    options_.k = 6;
    options_.bound = GetParam().bound;
    options_.shard_count = GetParam().shards;
    searcher_ = CreateSearcher(GetParam().algorithm, graph_, prestige_,
                               options_);
    reference_ = searcher_->Search(origins_, &reference_context_);
  }

  AnswerStream Open(SearchContext* context,
                    const StreamOptions& stream_options = {}) {
    return AnswerStream(searcher_.get(), origins_, stream_options, context);
  }

  Graph graph_;
  std::vector<double> prestige_;
  std::vector<std::vector<NodeId>> origins_;
  SearchOptions options_;
  std::unique_ptr<Searcher> searcher_;
  SearchContext reference_context_;
  SearchResult reference_;
};

INSTANTIATE_TEST_SUITE_P(AllModes, AnswerStreamSweep,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Pulling every answer from a stream yields exactly the drained result:
// same answers, same order, same deterministic metrics at exhaustion.
TEST_P(AnswerStreamSweep, FullPullMatchesDrained) {
  SearchContext context;
  AnswerStream stream = Open(&context);
  std::vector<AnswerTree> pulled;
  while (auto answer = stream.Next()) pulled.push_back(std::move(*answer));
  EXPECT_TRUE(stream.done());
  EXPECT_FALSE(stream.hit_limit());
  ASSERT_EQ(pulled.size(), reference_.answers.size());
  ExpectSameAnswers(pulled, reference_.answers, pulled.size());
  ExpectSameDeterministicMetrics(stream.metrics(), reference_.metrics);
}

// Prefix equivalence, the streaming contract: for every n, a stream
// pulled n times returns exactly the first n answers of the drained
// query. One warm context serves every prefix length — streams leave it
// reusable.
TEST_P(AnswerStreamSweep, EveryPrefixMatchesDrained) {
  SearchContext context;  // warm across all prefix lengths
  for (size_t n = 1; n <= reference_.answers.size(); ++n) {
    AnswerStream stream = Open(&context);
    std::vector<AnswerTree> pulled;
    for (size_t i = 0; i < n; ++i) {
      auto answer = stream.Next();
      ASSERT_TRUE(answer.has_value()) << "prefix " << n << " pull " << i;
      pulled.push_back(std::move(*answer));
    }
    ExpectSameAnswers(pulled, reference_.answers, n);
  }
}

// A step budget of one node expansion per Next() forces the maximum
// number of pause/resume cycles; the reassembled sequence must still be
// the drained one.
TEST_P(AnswerStreamSweep, StepBudgetOneStillIdentical) {
  SearchContext context;
  StreamOptions stream_options;
  stream_options.step_budget = 1;
  AnswerStream stream = Open(&context, stream_options);
  std::vector<AnswerTree> pulled;
  size_t limit_pauses = 0;
  for (;;) {
    auto answer = stream.Next();
    if (answer.has_value()) {
      pulled.push_back(std::move(*answer));
      continue;
    }
    if (stream.hit_limit()) {
      ++limit_pauses;
      continue;  // paused without an answer: resume
    }
    break;  // exhausted
  }
  EXPECT_TRUE(stream.done());
  ASSERT_EQ(pulled.size(), reference_.answers.size());
  ExpectSameAnswers(pulled, reference_.answers, pulled.size());
  ExpectSameDeterministicMetrics(stream.metrics(), reference_.metrics);
  // The searches here take many expansions; the budget must have bitten.
  EXPECT_GT(limit_pauses, 0u);
}

// Drain after n pulls returns exactly the remaining answers, and the
// final metrics match the uninterrupted run.
TEST_P(AnswerStreamSweep, DrainAfterPullsReturnsRemainder) {
  if (reference_.answers.size() < 2) GTEST_SKIP();
  SearchContext context;
  AnswerStream stream = Open(&context);
  auto first = stream.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(SameAnswer(*first, reference_.answers[0]));
  SearchResult rest = stream.Drain();
  ASSERT_EQ(rest.answers.size(), reference_.answers.size() - 1);
  for (size_t i = 0; i < rest.answers.size(); ++i) {
    EXPECT_TRUE(SameAnswer(rest.answers[i], reference_.answers[i + 1]));
  }
  ExpectSameDeterministicMetrics(rest.metrics, reference_.metrics);
}

// Drain on a fresh stream is the classic run-to-completion query.
TEST_P(AnswerStreamSweep, FreshDrainIsClassicQuery) {
  SearchContext context;
  SearchResult drained = Open(&context).Drain();
  ASSERT_EQ(drained.answers.size(), reference_.answers.size());
  ExpectSameAnswers(drained.answers, reference_.answers,
                    drained.answers.size());
  ExpectSameDeterministicMetrics(drained.metrics, reference_.metrics);
}

// A stream abandoned mid-search (destroyed after n pulls) leaves its
// warm context fully reusable: the next drained query on it is
// identical to the reference.
TEST_P(AnswerStreamSweep, AbandonedStreamLeavesContextReusable) {
  SearchContext context;
  {
    AnswerStream stream = Open(&context);
    (void)stream.Next();  // abandon after one pull
  }
  SearchResult warm = searcher_->Search(origins_, &context);
  ASSERT_EQ(warm.answers.size(), reference_.answers.size());
  ExpectSameAnswers(warm.answers, reference_.answers, warm.answers.size());
  ExpectSameDeterministicMetrics(warm.metrics, reference_.metrics);
}

// Cancel mid-stream: later Next() returns nothing, metrics stay
// readable, and the context is reusable for an identical warm query.
TEST_P(AnswerStreamSweep, CancelMidStreamLeavesContextReusable) {
  SearchContext context;
  AnswerStream stream = Open(&context);
  (void)stream.Next();
  stream.Cancel();
  EXPECT_TRUE(stream.done());
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.Drain().answers.size(), 0u);
  SearchResult warm = searcher_->Search(origins_, &context);
  ExpectSameAnswers(warm.answers, reference_.answers, warm.answers.size());
  ExpectSameDeterministicMetrics(warm.metrics, reference_.metrics);
}

// A deadline that expires before any expansion pauses the stream with
// zero work done — and the paused search stays resumable: clearing the
// effective deadline by pulling again eventually yields the full
// drained sequence.
TEST_P(AnswerStreamSweep, TinyDeadlinePausesThenResumes) {
  SearchContext context;
  StreamOptions stream_options;
  stream_options.deadline_seconds = 1e-12;
  AnswerStream stream = Open(&context, stream_options);
  auto first = stream.Next();
  EXPECT_FALSE(first.has_value());
  EXPECT_TRUE(stream.hit_limit());
  EXPECT_FALSE(stream.done());
  EXPECT_EQ(stream.metrics().nodes_explored, 0u);
  // Keep pulling: each call makes (at least) zero progress but the
  // deadline re-arms per call, and the wall clock always exceeds 1e-12s
  // — so pulls pause forever while the search stands still. Abandon and
  // verify the context is untouched-warm instead.
  stream.Cancel();
  SearchResult warm = searcher_->Search(origins_, &context);
  ASSERT_EQ(warm.answers.size(), reference_.answers.size());
  ExpectSameAnswers(warm.answers, reference_.answers, warm.answers.size());
}

// Empty or unmatched origin sets: the stream is born exhausted.
TEST_P(AnswerStreamSweep, UnmatchedKeywordMeansEmptyStream) {
  SearchContext context;
  AnswerStream stream(searcher_.get(), {{0, 1}, {}}, StreamOptions{},
                      &context);
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_TRUE(stream.done());
  EXPECT_FALSE(stream.hit_limit());
  EXPECT_EQ(stream.Drain().answers.size(), 0u);
}

// ---- Pool-leased streams --------------------------------------------------

TEST(AnswerStreamPool, LeaseReturnsOnDestructionAndNeverGrows) {
  Graph graph = MakeRandomGraph(150, 600, 11);
  std::vector<double> prestige = UniformPrestige(graph.num_nodes());
  SearchOptions options;
  options.k = 4;
  auto searcher =
      CreateSearcher(Algorithm::kBidirectional, graph, prestige, options);
  std::vector<std::vector<NodeId>> origins = {{0, 1}, {2, 3}};
  SearchResult reference = searcher->Search(origins);

  SearchContextPool pool;
  StreamOptions stream_options;
  stream_options.pool = &pool;
  for (int round = 0; round < 3; ++round) {
    AnswerStream stream(searcher.get(), origins, stream_options, nullptr);
    std::vector<AnswerTree> pulled;
    while (auto answer = stream.Next()) pulled.push_back(std::move(*answer));
    ExpectSameAnswers(pulled, reference.answers, reference.answers.size());
    EXPECT_EQ(pool.available(), 0u);  // leased while the stream lives
  }
  EXPECT_EQ(pool.size(), 1u);  // one context served all rounds
  EXPECT_EQ(pool.available(), 1u);
}

TEST(AnswerStreamPool, CancelReturnsLeaseImmediately) {
  Graph graph = MakeRandomGraph(150, 600, 11);
  std::vector<double> prestige = UniformPrestige(graph.num_nodes());
  SearchOptions options;
  options.k = 4;
  auto searcher =
      CreateSearcher(Algorithm::kBackwardSI, graph, prestige, options);
  std::vector<std::vector<NodeId>> origins = {{0, 1}, {2, 3}};

  SearchContextPool pool;
  StreamOptions stream_options;
  stream_options.pool = &pool;
  AnswerStream stream(searcher.get(), origins, stream_options, nullptr);
  (void)stream.Next();
  EXPECT_EQ(pool.available(), 0u);
  stream.Cancel();
  EXPECT_EQ(pool.available(), pool.size());  // back before destruction
  EXPECT_EQ(pool.size(), 1u);
}

// ---- Engine front door ----------------------------------------------------

class AnswerStreamEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpConfig config;
    config.num_authors = 200;
    config.num_papers = 400;
    config.num_conferences = 15;
    db_ = new Database(GenerateDblp(config));
    engine_ = new Engine(Engine::FromDatabase(*db_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static Database* db_;
  static Engine* engine_;
};

Database* AnswerStreamEngineTest::db_ = nullptr;
Engine* AnswerStreamEngineTest::engine_ = nullptr;

TEST_F(AnswerStreamEngineTest, OpenQueryMatchesQuery) {
  std::vector<std::string> keywords = {"paper", "author"};
  SearchOptions options;
  options.k = 5;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 200'000;
  SearchResult drained =
      engine_->Query(keywords, Algorithm::kBidirectional, options);
  ASSERT_FALSE(drained.answers.empty());

  AnswerStream stream =
      engine_->OpenQuery(keywords, Algorithm::kBidirectional, options);
  std::vector<AnswerTree> pulled;
  while (auto answer = stream.Next()) pulled.push_back(std::move(*answer));
  EXPECT_EQ(stream.answers_pulled(), pulled.size());
  ASSERT_EQ(pulled.size(), drained.answers.size());
  ExpectSameAnswers(pulled, drained.answers, pulled.size());
  ExpectSameDeterministicMetrics(stream.metrics(), drained.metrics);
}

TEST_F(AnswerStreamEngineTest, OpenQueryResolvedWithWarmContext) {
  auto origins = engine_->Resolve({"paper", "conference"});
  SearchOptions options;
  options.k = 4;
  SearchResult drained =
      engine_->QueryResolved(origins, Algorithm::kBackwardMI, options);

  SearchContext context;
  for (int round = 0; round < 2; ++round) {  // round 2 runs warm
    AnswerStream stream = engine_->OpenQueryResolved(
        origins, Algorithm::kBackwardMI, options, StreamOptions{}, &context);
    std::vector<AnswerTree> pulled;
    while (auto answer = stream.Next()) pulled.push_back(std::move(*answer));
    ASSERT_EQ(pulled.size(), drained.answers.size());
    ExpectSameAnswers(pulled, drained.answers, pulled.size());
  }
}

// Concurrent streams over one shared pool: every thread's pulled
// sequence must equal the sequential reference, and the pool must not
// grow past the thread count. This test is part of the TSan CI suite.
TEST_F(AnswerStreamEngineTest, ConcurrentStreamsOverOnePool) {
  const std::vector<std::vector<std::string>> queries = {
      {"paper", "author"}, {"writes", "conference"}, {"paper", "cites"}};
  SearchOptions options;
  options.k = 3;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 100'000;

  std::vector<SearchResult> reference;
  for (const auto& q : queries) {
    reference.push_back(engine_->Query(q, Algorithm::kBackwardSI, options));
  }

  SearchContextPool pool;
  StreamOptions stream_options;
  stream_options.pool = &pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> threads;
  std::mutex failures_mu;
  std::vector<std::string> failures;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int round = 0; round < kRounds; ++round) {
        size_t qi = static_cast<size_t>(t + round) % queries.size();
        AnswerStream stream = engine_->OpenQuery(
            queries[qi], Algorithm::kBackwardSI, options, stream_options);
        std::vector<AnswerTree> pulled;
        while (auto answer = stream.Next()) {
          pulled.push_back(std::move(*answer));
        }
        bool ok = pulled.size() == reference[qi].answers.size();
        for (size_t i = 0; ok && i < pulled.size(); ++i) {
          ok = SameAnswer(pulled[i], reference[qi].answers[i]);
        }
        if (!ok) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back("thread " + std::to_string(t) + " round " +
                             std::to_string(round) + " diverged");
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(failures.empty()) << failures.front();
  EXPECT_LE(pool.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(pool.available(), pool.size());
}

}  // namespace
}  // namespace banks
