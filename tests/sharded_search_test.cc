// Differential & concurrency harness of the sharded frontier.
//
// The contract under test: SearchOptions::shard_count must never change
// what a search computes — answers (every deterministic field, via
// SameAnswer) and deterministic metrics are byte-identical to
// shard_count = 1 for all three algorithms, at any shard count, on any
// graph, warm or cold, from any number of concurrent callers. The
// randomized differential sweep covers graphs × seeds × bounds × k; the
// stress tests hammer one sharded query per thread from a shared
// SearchContextPool and pin the PR-3 guarantee: once warm, the pool
// stops growing.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "banks/engine.h"
#include "datasets/dblp_gen.h"
#include "prestige/pagerank.h"
#include "search/answer_stream.h"
#include "search/context_pool.h"
#include "search/shard_team.h"
#include "search/sharding.h"
#include "test_util.h"
#include "util/rng.h"

namespace banks {
namespace {

constexpr uint32_t kShardCounts[] = {2, 4, 8};

/// Deterministic-field equality of two runs: every answer SameAnswer and
/// every order-determined metric equal. Timing values are excluded, but
/// the *lengths* of the timing vectors are not — they count release
/// events.
void ExpectSameResults(const SearchResult& a, const SearchResult& b,
                       const std::string& what) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << what;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_TRUE(SameAnswer(a.answers[i], b.answers[i]))
        << what << ": answer " << i << " differs";
  }
  EXPECT_EQ(a.metrics.nodes_explored, b.metrics.nodes_explored) << what;
  EXPECT_EQ(a.metrics.nodes_touched, b.metrics.nodes_touched) << what;
  EXPECT_EQ(a.metrics.edges_relaxed, b.metrics.edges_relaxed) << what;
  EXPECT_EQ(a.metrics.propagation_steps, b.metrics.propagation_steps) << what;
  EXPECT_EQ(a.metrics.answers_generated, b.metrics.answers_generated) << what;
  EXPECT_EQ(a.metrics.answers_output, b.metrics.answers_output) << what;
  EXPECT_EQ(a.metrics.budget_exhausted, b.metrics.budget_exhausted) << what;
  EXPECT_EQ(a.metrics.generated_times.size(), b.metrics.generated_times.size())
      << what;
  EXPECT_EQ(a.metrics.output_times.size(), b.metrics.output_times.size())
      << what;
}

/// Runs `origins` on `graph` at shard_count 1 and every count in
/// kShardCounts (sharing one worker-scratch pool) and asserts all runs
/// identical.
void ExpectShardInvariant(Algorithm algorithm, const Graph& graph,
                          const std::vector<std::vector<NodeId>>& origins,
                          SearchOptions options, const std::string& what) {
  SearchContextPool pool;
  options.shard_count = 1;
  options.shard_pool = &pool;
  SearchResult reference = testing::RunSearch(algorithm, graph, origins,
                                              options);
  for (uint32_t shards : kShardCounts) {
    options.shard_count = shards;
    SearchResult sharded = testing::RunSearch(algorithm, graph, origins,
                                              options);
    ExpectSameResults(reference, sharded,
                      what + " shards=" + std::to_string(shards));
  }
}

struct ShardCase {
  Algorithm algorithm;
  uint64_t seed;
};

class ShardedSearch : public ::testing::TestWithParam<ShardCase> {
 protected:
  void SetUp() override {
    graph_ = testing::MakeRandomGraph(260, 1040, GetParam().seed);
    // Derive deterministic origin sets from the seed (same scheme as the
    // property sweep, different multiplier so the cases differ).
    Rng rng(GetParam().seed * 6151 + 29);
    size_t num_keywords = 2 + rng.Below(3);
    origins_.resize(num_keywords);
    for (auto& s : origins_) {
      size_t count = 1 + rng.Below(10);
      for (size_t i = 0; i < count; ++i) {
        s.push_back(static_cast<NodeId>(rng.Below(graph_.num_nodes())));
      }
    }
  }

  Graph graph_;
  std::vector<std::vector<NodeId>> origins_;
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardedSearch,
    ::testing::ValuesIn([] {
      std::vector<ShardCase> cases;
      for (Algorithm a : {Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                          Algorithm::kBidirectional}) {
        for (uint64_t seed = 1; seed <= 5; ++seed) {
          cases.push_back(ShardCase{a, seed});
        }
      }
      return cases;
    }()),
    [](const auto& info) {
      std::string name = AlgorithmName(info.param.algorithm);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_seed" + std::to_string(info.param.seed);
    });

TEST_P(ShardedSearch, TightBoundDifferential) {
  SearchOptions options;
  options.bound = BoundMode::kTight;
  ExpectShardInvariant(GetParam().algorithm, graph_, origins_, options,
                       "tight");
}

TEST_P(ShardedSearch, LooseBoundDifferential) {
  SearchOptions options;
  options.bound = BoundMode::kLoose;
  ExpectShardInvariant(GetParam().algorithm, graph_, origins_, options,
                       "loose");
}

TEST_P(ShardedSearch, ImmediateBoundSmallK) {
  SearchOptions options;
  options.bound = BoundMode::kImmediate;
  options.k = 3;
  ExpectShardInvariant(GetParam().algorithm, graph_, origins_, options,
                       "immediate k=3");
}

TEST_P(ShardedSearch, ExplorationBudgetDifferential) {
  // Budgets make the result depend on the *exact* expansion prefix, so
  // any shard-induced reordering would show immediately.
  SearchOptions options;
  options.bound = BoundMode::kLoose;
  options.max_nodes_explored = 150;
  ExpectShardInvariant(GetParam().algorithm, graph_, origins_, options,
                       "budget");
}

class ShardedSearchEdgeCases
    : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ShardedSearchEdgeCases,
    ::testing::Values(Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                      Algorithm::kBidirectional),
    [](const auto& info) {
      std::string name = AlgorithmName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST_P(ShardedSearchEdgeCases, Fig4QueryAllShardCounts) {
  testing::Fig4Graph fig = testing::MakeFig4Graph();
  std::vector<std::vector<NodeId>> origins = {
      fig.database_papers, {fig.james}, {fig.john}};
  SearchOptions options;
  options.bound = BoundMode::kTight;
  ExpectShardInvariant(GetParam(), fig.graph, origins, options, "fig4");
}

TEST_P(ShardedSearchEdgeCases, UnmatchedKeywordIsEmptyAtAnyShardCount) {
  Graph graph = testing::MakePathGraph(12);
  std::vector<std::vector<NodeId>> origins = {{0, 3}, {}};
  for (uint32_t shards : {1u, 2u, 8u}) {
    SearchOptions options;
    options.shard_count = shards;
    SearchResult r = testing::RunSearch(GetParam(), graph, origins, options);
    EXPECT_TRUE(r.answers.empty()) << shards;
    EXPECT_EQ(r.metrics.nodes_explored, 0u) << shards;
  }
}

TEST_P(ShardedSearchEdgeCases, EmptyQueryIsEmptyAtAnyShardCount) {
  Graph graph = testing::MakePathGraph(6);
  for (uint32_t shards : {1u, 4u}) {
    SearchOptions options;
    options.shard_count = shards;
    SearchResult r = testing::RunSearch(GetParam(), graph, {}, options);
    EXPECT_TRUE(r.answers.empty()) << shards;
  }
}

TEST_P(ShardedSearchEdgeCases, SingleOriginSingleKeyword) {
  Graph graph = testing::MakeStarGraph(24);
  SearchOptions options;
  ExpectShardInvariant(GetParam(), graph, {{5}}, options, "single-origin");
}

TEST_P(ShardedSearchEdgeCases, MoreShardsThanNodes) {
  Graph graph = testing::MakePathGraph(3);
  std::vector<std::vector<NodeId>> origins = {{0}, {2}};
  SearchOptions options;
  options.shard_count = 1;
  SearchResult reference =
      testing::RunSearch(GetParam(), graph, origins, options);
  options.shard_count = 16;  // shards > nodes: most ranges are empty
  SearchResult sharded =
      testing::RunSearch(GetParam(), graph, origins, options);
  ExpectSameResults(reference, sharded, "shards>nodes");
  EXPECT_FALSE(reference.answers.empty());
}

TEST_P(ShardedSearchEdgeCases, WarmContextAlternatingShardCounts) {
  // One warm context serves shard counts 4, 1, 8, 2 back to back; each
  // run must match a fresh-context run at shard_count 1.
  Graph graph = testing::MakeRandomGraph(180, 720, 11);
  std::vector<std::vector<NodeId>> origins = {{3, 17, 40}, {9, 88}};
  SearchOptions base;
  base.bound = BoundMode::kTight;
  std::vector<double> prestige;  // empty = uniform; outlives the searchers
  SearchContext fresh;
  auto searcher1 = CreateSearcher(GetParam(), graph, prestige, base);
  SearchResult reference = searcher1->Search(origins, &fresh);

  SearchContextPool pool;
  SearchContext warm;
  for (uint32_t shards : {4u, 1u, 8u, 2u}) {
    SearchOptions options = base;
    options.shard_count = shards;
    options.shard_pool = &pool;
    auto searcher = CreateSearcher(GetParam(), graph, prestige, options);
    SearchResult r = searcher->Search(origins, &warm);
    ExpectSameResults(reference, r,
                      "warm alternating shards=" + std::to_string(shards));
  }
}

TEST(ShardPlanTest, RangesPartitionTheNodeSpace) {
  ShardPlan plan{4, 100};
  uint32_t prev = 0;
  for (NodeId v = 0; v < 100; ++v) {
    uint32_t s = plan.ShardOf(v);
    ASSERT_LT(s, 4u);
    ASSERT_GE(s, prev) << "ranges must be contiguous and nondecreasing";
    prev = s;
  }
  EXPECT_EQ(plan.ShardOf(0), 0u);
  EXPECT_EQ(plan.ShardOf(99), 3u);
  // Degenerate plans.
  EXPECT_EQ((ShardPlan{1, 100}).ShardOf(42), 0u);
  EXPECT_EQ((ShardPlan{8, 0}).ShardOf(0), 0u);
  EXPECT_EQ((ShardPlan{3, 2}).ShardOf(1), 1u);
}

// ---- Concurrency stress ---------------------------------------------------
// One sharded query per thread, worker scratch drawn from one shared
// SearchContextPool. After a warm-up round the pool must stop growing
// (the shard workers' scratch is recycled, extending the allocation-free
// guarantee to sharded execution), and every thread's every round must
// reproduce the sequential reference exactly.

void StressSharedPool(Algorithm algorithm, uint32_t shards, size_t threads,
                      size_t rounds, bool expect_engagement) {
  Graph graph = testing::MakeRandomGraph(300, 1500, 23);
  std::vector<std::vector<NodeId>> origins = {
      {1, 30, 61, 92, 123}, {7, 77, 147}, {15, 155, 255}};
  SearchOptions options;
  options.bound = BoundMode::kTight;  // exercises the sliced NRA scan
  options.k = 20;

  std::vector<double> prestige;
  auto reference_searcher = CreateSearcher(algorithm, graph, prestige,
                                           options);
  SearchResult reference = reference_searcher->Search(origins);

  SearchContextPool pool;
  options.shard_count = shards;
  options.shard_pool = &pool;
  auto searcher = CreateSearcher(algorithm, graph, prestige, options);

  // Warm-up round: every thread runs once concurrently, growing the
  // pool to its high-water mark.
  std::atomic<size_t> mismatches{0};
  auto run_round = [&](std::vector<SearchContext>* contexts) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        SearchResult r = searcher->Search(origins, &(*contexts)[t]);
        bool same = r.answers.size() == reference.answers.size();
        for (size_t i = 0; same && i < r.answers.size(); ++i) {
          same = SameAnswer(r.answers[i], reference.answers[i]);
        }
        if (!same || r.metrics.nodes_explored !=
                         reference.metrics.nodes_explored) {
          mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  };

  std::vector<SearchContext> contexts(threads);
  run_round(&contexts);
  const size_t warm_size = pool.size();
  if (expect_engagement) {
    // This workload's materialization batches are big enough to engage
    // the team (verified for Bidirectional): each query leases scratch
    // for its shards - 1 workers, so the shared pool must have grown.
    EXPECT_GE(warm_size, shards - 1)
        << "shard team never engaged; the stress is not stressing";
  }
  // Worker scratch is only leased while a query runs, so between rounds
  // everything is back in the pool.
  EXPECT_EQ(pool.available(), pool.size());

  for (size_t round = 1; round < rounds; ++round) run_round(&contexts);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(pool.size(), warm_size)
      << "pool grew after the warm-up round: shard workers are not "
         "recycling their scratch";
  // At most (shards - 1) leases per concurrently running query.
  EXPECT_LE(pool.size(), threads * (shards - 1));
}

TEST(ShardedSearchStress, BidirectionalSharedPoolNoGrowthOnceWarm) {
  StressSharedPool(Algorithm::kBidirectional, 2, 4, 5,
                   /*expect_engagement=*/true);
}

TEST(ShardedSearchStress, BidirectionalFourShards) {
  StressSharedPool(Algorithm::kBidirectional, 4, 3, 4,
                   /*expect_engagement=*/true);
}

TEST(ShardedSearchStress, BackwardSISharedPool) {
  // SI's workers never need build scratch on this graph size (only the
  // bound scans parallelize), so no engagement floor is asserted.
  StressSharedPool(Algorithm::kBackwardSI, 4, 3, 4,
                   /*expect_engagement=*/false);
}

TEST(ShardedSearchStress, BackwardMISharedPool) {
  StressSharedPool(Algorithm::kBackwardMI, 4, 3, 4,
                   /*expect_engagement=*/false);
}

// ---- ShardTeamPool reuse --------------------------------------------------
// The thread-pool analogue of the context-pool guarantee: once one team
// of each requested size class exists, a stream of sharded queries —
// even alternating shard counts — spawns no further threads. Teams are
// leased per Resume slice and returned by RAII, so between queries the
// pool is fully idle.

TEST(ShardTeamPoolReuse, NoGrowthOnceWarmAcrossAlternatingShardCounts) {
  Graph graph = testing::MakeRandomGraph(220, 880, 7);
  std::vector<std::vector<NodeId>> origins = {{2, 40, 111}, {9, 77, 200}};
  SearchOptions options;
  options.bound = BoundMode::kTight;

  SearchContextPool ctx_pool;
  ShardTeamPool team_pool;
  options.shard_pool = &ctx_pool;
  options.team_pool = &team_pool;

  options.shard_count = 1;
  SearchResult reference = testing::RunSearch(Algorithm::kBidirectional,
                                              graph, origins, options);
  // The sequential path runs the same round loop inline and must never
  // touch the team pool.
  EXPECT_EQ(team_pool.size(), 0u);
  EXPECT_EQ(team_pool.acquires(), 0u);

  SearchContext warm;
  std::vector<double> prestige;  // uniform
  auto run = [&](uint32_t shards) {
    options.shard_count = shards;
    auto searcher = CreateSearcher(Algorithm::kBidirectional, graph,
                                   prestige, options);
    SearchResult r = searcher->Search(origins, &warm);
    ExpectSameResults(reference, r,
                      "team-pool shards=" + std::to_string(shards));
  };

  // Warm-up: one team per requested size class (worker counts 2, 4, 8).
  for (uint32_t shards : {2u, 4u, 8u}) run(shards);
  const size_t warm_size = team_pool.size();
  EXPECT_EQ(warm_size, 3u);  // sequential queries lease one team at a time
  EXPECT_EQ(team_pool.available(), warm_size);
  const uint64_t warm_acquires = team_pool.acquires();

  // Alternating shard counts, including 16 — clamped to the fixed lane
  // count, so it re-leases the 8-worker team instead of spawning a new
  // size class.
  for (uint32_t shards : {8u, 2u, 16u, 4u, 2u, 8u}) {
    run(shards);
    EXPECT_EQ(team_pool.size(), warm_size)
        << "team pool grew after warm-up at shards=" << shards;
    EXPECT_EQ(team_pool.available(), warm_size) << shards;
  }
  EXPECT_GT(team_pool.acquires(), warm_acquires);
}

// ---- Streamed sharded search ----------------------------------------------
// Sharded pauses land only on BSP round boundaries (mailboxes empty,
// state round-consistent), so even the most hostile pull cadence — one
// step of budget per Next() — must reproduce the shard-1 drained answer
// sequence exactly, prefix by prefix, at every shard count.

class ShardedStreaming : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ShardedStreaming,
    ::testing::Values(Algorithm::kBackwardMI, Algorithm::kBackwardSI,
                      Algorithm::kBidirectional),
    [](const auto& info) {
      std::string name = AlgorithmName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST_P(ShardedStreaming, StepBudgetOnePrefixIdenticalAcrossShardCounts) {
  Graph graph = testing::MakeRandomGraph(200, 800, 13);
  std::vector<double> prestige = UniformPrestige(graph.num_nodes());
  std::vector<std::vector<NodeId>> origins = {{0, 11, 53}, {7, 99, 180}};
  SearchOptions options;
  options.bound = BoundMode::kTight;
  options.k = 6;

  SearchContextPool ctx_pool;
  ShardTeamPool team_pool;
  options.shard_pool = &ctx_pool;
  options.team_pool = &team_pool;

  options.shard_count = 1;
  auto ref_searcher = CreateSearcher(GetParam(), graph, prestige, options);
  SearchContext ref_context;
  SearchResult reference = ref_searcher->Search(origins, &ref_context);
  ASSERT_FALSE(reference.answers.empty());

  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    options.shard_count = shards;
    auto searcher = CreateSearcher(GetParam(), graph, prestige, options);
    StreamOptions stream_options;
    stream_options.step_budget = 1;
    SearchContext context;
    AnswerStream stream(searcher.get(), origins, stream_options, &context);
    std::vector<AnswerTree> pulled;
    size_t pauses = 0;
    size_t guard = 0;
    while (!stream.done()) {
      ASSERT_LT(++guard, 200000u) << "stream made no progress";
      auto answer = stream.Next();
      if (answer.has_value()) {
        pulled.push_back(std::move(*answer));
      } else if (stream.hit_limit()) {
        ++pauses;  // paused on a round boundary; resume
      } else {
        break;
      }
    }
    ASSERT_EQ(pulled.size(), reference.answers.size()) << shards;
    for (size_t i = 0; i < pulled.size(); ++i) {
      EXPECT_TRUE(SameAnswer(pulled[i], reference.answers[i]))
          << "shards=" << shards << ": answer " << i << " differs";
    }
    // Pausing is behavior-neutral: the reassembled run's counters match
    // the drained shard-1 run's.
    const SearchMetrics& m = stream.metrics();
    EXPECT_EQ(m.nodes_explored, reference.metrics.nodes_explored) << shards;
    EXPECT_EQ(m.edges_relaxed, reference.metrics.edges_relaxed) << shards;
    EXPECT_EQ(m.answers_output, reference.metrics.answers_output) << shards;
    EXPECT_GT(pauses, 0u)
        << "step budget 1 never paused; the test is not exercising resume";
  }
}

// ---- Mixed stress: streams + batches over one pool pair -------------------
// Two threads pull sharded streams while two threads run sharded
// QueryBatches, all drawing scratch contexts from one SearchContextPool
// and worker threads from one ShardTeamPool. Every result must match
// its sequential reference, and after the storm both pools must be
// fully idle (every context lease and team lease returned).

TEST(ShardedMixedStress, StreamsAndBatchesShareOnePoolPair) {
  DblpConfig config;
  config.num_authors = 80;
  config.num_papers = 160;
  config.num_conferences = 8;
  Database db = GenerateDblp(config);
  Engine engine = Engine::FromDatabase(db);
  const NodeId n = static_cast<NodeId>(engine.graph().num_nodes());
  ASSERT_GT(n, 40u);

  std::vector<std::vector<NodeId>> stream_origins = {
      {1, static_cast<NodeId>(n / 3), static_cast<NodeId>(n / 2)},
      {7, static_cast<NodeId>(n - 5)}};
  std::vector<std::vector<std::vector<NodeId>>> batch_origins = {
      {{2, static_cast<NodeId>(n / 4)}, {static_cast<NodeId>(n - 9)}},
      {{3, static_cast<NodeId>(n / 5)}, {11, static_cast<NodeId>(n / 2 + 1)}},
      {{static_cast<NodeId>(n / 7)}, {5, static_cast<NodeId>(n - 17)}}};

  SearchOptions base;
  base.bound = BoundMode::kTight;
  base.k = 5;

  SearchResult stream_reference =
      engine.QueryResolved(stream_origins, Algorithm::kBidirectional, base);
  std::vector<SearchResult> batch_reference;
  for (const auto& origins : batch_origins) {
    batch_reference.push_back(
        engine.QueryResolved(origins, Algorithm::kBidirectional, base));
  }

  SearchContextPool ctx_pool;
  ShardTeamPool team_pool;
  std::atomic<size_t> mismatches{0};
  constexpr size_t kRounds = 2;

  auto same_result = [](const SearchResult& a, const SearchResult& b) {
    if (a.answers.size() != b.answers.size()) return false;
    for (size_t i = 0; i < a.answers.size(); ++i) {
      if (!SameAnswer(a.answers[i], b.answers[i])) return false;
    }
    return a.metrics.nodes_explored == b.metrics.nodes_explored;
  };

  auto stream_thread = [&] {
    SearchOptions options = base;
    options.shard_count = 4;
    options.shard_pool = &ctx_pool;
    options.team_pool = &team_pool;
    StreamOptions stream_options;
    stream_options.step_budget = 16;
    stream_options.pool = &ctx_pool;
    for (size_t round = 0; round < kRounds; ++round) {
      AnswerStream stream = engine.OpenQueryResolved(
          stream_origins, Algorithm::kBidirectional, options, stream_options);
      std::vector<AnswerTree> pulled;
      while (!stream.done()) {
        auto answer = stream.Next();
        if (answer.has_value()) {
          pulled.push_back(std::move(*answer));
        } else if (!stream.hit_limit()) {
          break;
        }
      }
      bool same = pulled.size() == stream_reference.answers.size();
      for (size_t i = 0; same && i < pulled.size(); ++i) {
        same = SameAnswer(pulled[i], stream_reference.answers[i]);
      }
      if (!same) mismatches.fetch_add(1);
    }
  };

  auto batch_thread = [&] {
    SearchOptions options = base;
    options.shard_count = 2;
    options.shard_pool = &ctx_pool;
    options.team_pool = &team_pool;
    std::vector<BatchQuerySpec> specs;
    for (const auto& origins : batch_origins) {
      BatchQuerySpec spec;
      spec.origins = origins;
      specs.push_back(spec);
    }
    BatchOptions batch;
    batch.num_threads = 2;
    batch.pool = &ctx_pool;
    for (size_t round = 0; round < kRounds; ++round) {
      BatchResult result =
          engine.QueryBatch(specs, Algorithm::kBidirectional, options, batch);
      if (result.results.size() != batch_reference.size()) {
        mismatches.fetch_add(1);
        continue;
      }
      for (size_t i = 0; i < result.results.size(); ++i) {
        if (!same_result(result.results[i], batch_reference[i])) {
          mismatches.fetch_add(1);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(stream_thread);
  threads.emplace_back(stream_thread);
  threads.emplace_back(batch_thread);
  threads.emplace_back(batch_thread);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  // Every lease returned: both pools fully idle.
  EXPECT_EQ(ctx_pool.available(), ctx_pool.size());
  EXPECT_EQ(team_pool.available(), team_pool.size());
  // Team high-water: ≤ 2 stream queries of 4 workers plus ≤ 4 in-flight
  // batch queries of 2 workers at once.
  EXPECT_LE(team_pool.size(), 6u);
  EXPECT_GT(team_pool.acquires(), 0u);
}

}  // namespace
}  // namespace banks
